/**
 * @file
 * graphene_lint: the repo-specific static-analysis pass.
 *
 * Token/regex-level (deliberately no libclang dependency) enforcement
 * of the project rules the C++ type system cannot express:
 *
 *   raw-domain-type         Domain quantities (cycles, rows, bank
 *                           ids, addresses, activation counts) must
 *                           use the strong types from
 *                           common/types.hh, not raw
 *                           uint32_t/uint64_t, anywhere outside
 *                           types.hh itself.
 *   nondeterministic-rng    No std::rand/srand, std::random_device,
 *                           or time-seeded RNG outside
 *                           common/random — every experiment must be
 *                           reproducible from an explicit seed.
 *   unordered-map-iteration Iterating a std::unordered_map in the
 *                           tracker/scheme hot paths (src/core,
 *                           src/schemes) risks order-dependent
 *                           results; every such loop must carry an
 *                           explicit "lint: order-independent"
 *                           audit marker.
 *   float-type              No `float`: all physical quantities are
 *                           double (or integral strong types);
 *                           mixing precisions has caused silent
 *                           tolerance drift in other reproductions.
 *   contract-macro-include  A header using the GRAPHENE_* contract
 *                           macros must include check/contracts.hh
 *                           itself rather than relying on a
 *                           transitive include.
 *   boundary-fatal          fatal()/panic() calls are reserved for
 *                           CLI/bench main() boundaries and the
 *                           logging/error/contract machinery itself;
 *                           library code must return a typed
 *                           Result/Error (external input) or use
 *                           GRAPHENE_CHECK (internal invariants)
 *                           instead, so one bad input cannot kill a
 *                           whole experiment grid (DESIGN.md §9).
 *   direct-logging          std::cout / printf-family calls outside
 *                           bench/, tools/, examples/, tests/ and
 *                           common/logging: library code reports
 *                           through obs:: probes or common/logging,
 *                           never by writing to stdout itself
 *                           (std::cerr stays allowed for
 *                           progress/warning chatter).
 *
 * Suppressions: a line (or the line directly above it) may carry
 * `lint: allow(<rule>)` to waive a specific finding, or
 * `lint: order-independent` to mark an audited unordered_map loop.
 *
 * Usage:
 *   graphene_lint [--json PATH] [paths...]   lint trees (default: src)
 *   graphene_lint --self-test <dir>          run the known-bad fixtures
 *
 * Exit status: 0 clean, 1 findings or self-test failure, 2 usage.
 *
 * The scanning substrate (comment/string stripping, suppression
 * markers, file walking, the machine-readable findings shape) lives
 * in tools/common/scan.hh, shared with graphene_analyze.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/scan.hh"

namespace fs = std::filesystem;

namespace {

using graphene::toolscan::Finding;
using graphene::toolscan::rawLines;
using graphene::toolscan::stripLines;
using graphene::toolscan::suppressed;

bool
allowed(const std::vector<std::string> &raw, std::size_t i,
        const std::string &rule)
{
    return graphene::toolscan::allowMarker(raw, i, "lint", rule);
}

/** Lowercase and drop underscores: RowId, row_id, rowid all match. */
std::string
normalize(const std::string &ident)
{
    std::string n;
    for (char c : ident)
        if (c != '_')
            n += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    return n;
}

using graphene::toolscan::endsWith;

/**
 * Identifier heuristic for raw-domain-type: names that denote one of
 * the typed domain quantities. Curated to be precise on this tree:
 * counts-of-things (rowsPerBank, numRows, maxEntries...) are
 * legitimately raw integers and must not fire.
 */
bool
isDomainName(const std::string &ident)
{
    const std::string n = normalize(ident);
    static const std::set<std::string> exact = {
        "cycle",       "curcycle",   "currentcycle", "startcycle",
        "endcycle",    "row",        "rowid",        "aggressorrow",
        "victimrow",   "openrow",    "hotrow",       "addr",
        "address",     "physaddr",   "bankid",       "actcount",
        "actscount",   "refwindow",  "resetwindow",
    };
    if (exact.count(n))
        return true;
    // Counts, sizes and within-unit indices stay raw: "rows",
    // "...perrow", "numrow...", "lineinrow" (an offset, not a row).
    if (n.find("per") != std::string::npos ||
        n.find("num") != std::string::npos || endsWith(n, "rows") ||
        endsWith(n, "cycles") || endsWith(n, "count") ||
        endsWith(n, "inrow"))
        return false;
    return endsWith(n, "cycle") || endsWith(n, "row") ||
           endsWith(n, "rowid") || endsWith(n, "addr") ||
           endsWith(n, "bankid");
}

using graphene::toolscan::pathContains;

class Linter
{
  public:
    explicit Linter(bool treat_all_as_hot = false)
        : _allHot(treat_all_as_hot)
    {
    }

    std::vector<Finding> lintFile(const fs::path &path) const;

  private:
    void rawDomainType(const fs::path &path,
                       const std::vector<std::string> &code,
                       const std::vector<std::string> &raw,
                       std::vector<Finding> &findings) const;
    void nondeterministicRng(const fs::path &path,
                             const std::vector<std::string> &code,
                             const std::vector<std::string> &raw,
                             std::vector<Finding> &findings) const;
    void unorderedMapIteration(const fs::path &path,
                               const std::vector<std::string> &code,
                               const std::vector<std::string> &raw,
                               std::vector<Finding> &findings) const;
    void floatType(const fs::path &path,
                   const std::vector<std::string> &code,
                   const std::vector<std::string> &raw,
                   std::vector<Finding> &findings) const;
    void contractMacroInclude(const fs::path &path,
                              const std::vector<std::string> &code,
                              const std::vector<std::string> &raw,
                              std::vector<Finding> &findings) const;
    void boundaryFatal(const fs::path &path,
                       const std::vector<std::string> &code,
                       const std::vector<std::string> &raw,
                       std::vector<Finding> &findings) const;
    void rawThread(const fs::path &path,
                   const std::vector<std::string> &code,
                   const std::vector<std::string> &raw,
                   std::vector<Finding> &findings) const;
    void directLogging(const fs::path &path,
                       const std::vector<std::string> &code,
                       const std::vector<std::string> &raw,
                       std::vector<Finding> &findings) const;

    bool _allHot;
};

void
Linter::rawDomainType(const fs::path &path,
                      const std::vector<std::string> &code,
                      const std::vector<std::string> &raw,
                      std::vector<Finding> &findings) const
{
    // types.hh defines the strong types in terms of the raw reps.
    if (endsWith(path.generic_string(), "common/types.hh"))
        return;
    static const std::regex decl(
        R"((?:\bstd::)?\buint(?:32|64)_t\b\s*(?:const\s+)?[&*]?\s*)"
        R"(([A-Za-z_]\w*))");
    static const std::regex more(R"(^\s*,\s*([A-Za-z_]\w*))");
    for (std::size_t i = 0; i < code.size(); ++i) {
        auto begin = std::sregex_iterator(code[i].begin(),
                                          code[i].end(), decl);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            std::vector<std::string> idents = {(*it)[1].str()};
            std::string rest = it->suffix().str();
            std::smatch m;
            while (std::regex_search(rest, m, more)) {
                idents.push_back(m[1].str());
                rest = m.suffix().str();
            }
            for (const auto &ident : idents) {
                if (!isDomainName(ident))
                    continue;
                if (allowed(raw, i, "raw-domain-type"))
                    continue;
                findings.push_back(
                    {path.generic_string(),
                     static_cast<unsigned>(i + 1), "raw-domain-type",
                     "'" + ident +
                         "' holds a domain quantity but is declared "
                         "as a raw integer; use the strong type from "
                         "common/types.hh (Cycle, Row, BankId, Addr, "
                         "ActCount, RefWindow)"});
            }
        }
    }
}

void
Linter::nondeterministicRng(const fs::path &path,
                            const std::vector<std::string> &code,
                            const std::vector<std::string> &raw,
                            std::vector<Finding> &findings) const
{
    // common/random wraps the one sanctioned engine.
    if (pathContains(path, "common/random"))
        return;
    static const std::regex bad(
        R"(\bstd::rand\b|\bsrand\s*\(|(?:^|[^:\w])rand\s*\(\s*\)|)"
        R"(\brandom_device\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], bad))
            continue;
        if (allowed(raw, i, "nondeterministic-rng"))
            continue;
        findings.push_back(
            {path.generic_string(), static_cast<unsigned>(i + 1),
             "nondeterministic-rng",
             "std::rand / std::random_device / time-seeded RNG "
             "breaks reproducibility; use graphene::Rng from "
             "common/random.hh with an explicit seed"});
    }
}

void
Linter::unorderedMapIteration(const fs::path &path,
                              const std::vector<std::string> &code,
                              const std::vector<std::string> &raw,
                              std::vector<Finding> &findings) const
{
    const bool hot = _allHot || pathContains(path, "src/core/") ||
                     pathContains(path, "src/schemes/");
    if (!hot)
        return;

    // Pass 1: names declared as std::unordered_map<...>.
    std::set<std::string> maps;
    for (const auto &line : code) {
        std::size_t pos = line.find("unordered_map");
        while (pos != std::string::npos) {
            std::size_t j = pos + sizeof("unordered_map") - 1;
            while (j < line.size() && std::isspace(
                       static_cast<unsigned char>(line[j])))
                ++j;
            if (j < line.size() && line[j] == '<') {
                int depth = 0;
                for (; j < line.size(); ++j) {
                    if (line[j] == '<')
                        ++depth;
                    else if (line[j] == '>' && --depth == 0) {
                        ++j;
                        break;
                    }
                }
                while (j < line.size() &&
                       (std::isspace(
                            static_cast<unsigned char>(line[j])) ||
                        line[j] == '&'))
                    ++j;
                std::string ident;
                while (j < line.size() &&
                       (std::isalnum(static_cast<unsigned char>(
                            line[j])) ||
                        line[j] == '_'))
                    ident += line[j++];
                if (!ident.empty())
                    maps.insert(ident);
            }
            pos = line.find("unordered_map", pos + 1);
        }
    }
    if (maps.empty())
        return;

    // Pass 2: ranged-for or begin()-iteration over those names.
    for (std::size_t i = 0; i < code.size(); ++i) {
        for (const auto &name : maps) {
            const bool ranged =
                std::regex_search(
                    code[i],
                    std::regex(R"(for\s*\([^;)]*:\s*(?:this->)?)" +
                               name + R"(\s*\))"));
            const bool iterated =
                code[i].find(name + ".begin()") !=
                    std::string::npos ||
                code[i].find(name + ".cbegin()") !=
                    std::string::npos;
            if (!ranged && !iterated)
                continue;
            if (suppressed(raw, i, "lint: order-independent") ||
                allowed(raw, i, "unordered-map-iteration"))
                continue;
            findings.push_back(
                {path.generic_string(), static_cast<unsigned>(i + 1),
                 "unordered-map-iteration",
                 "iteration over std::unordered_map '" + name +
                     "' in a tracker/scheme hot path can make "
                     "results order-dependent; audit the loop and "
                     "mark it '// lint: order-independent' or use an "
                     "ordered container"});
        }
    }
}

void
Linter::floatType(const fs::path &path,
                  const std::vector<std::string> &code,
                  const std::vector<std::string> &raw,
                  std::vector<Finding> &findings) const
{
    static const std::regex bad(R"(\bfloat\b)");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], bad))
            continue;
        if (allowed(raw, i, "float-type"))
            continue;
        findings.push_back(
            {path.generic_string(), static_cast<unsigned>(i + 1),
             "float-type",
             "'float' is banned: physical quantities are double (or "
             "integral strong types); single precision drifts past "
             "the reproduction tolerances"});
    }
}

void
Linter::contractMacroInclude(const fs::path &path,
                             const std::vector<std::string> &code,
                             const std::vector<std::string> &raw,
                             std::vector<Finding> &findings) const
{
    const std::string p = path.generic_string();
    if (!endsWith(p, ".hh") || endsWith(p, "check/contracts.hh"))
        return;
    static const std::regex macro(
        R"(\bGRAPHENE_(?:EXPECTS|ENSURES|INVARIANT|CHECK)\s*\()");
    bool includes = false;
    for (const auto &line : code)
        if (line.find("#include") != std::string::npos &&
            line.find("check/contracts.hh") != std::string::npos)
            includes = true;
    if (includes)
        return;
    static const std::regex define(R"(^\s*#\s*define\s+GRAPHENE_)");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], macro))
            continue;
        // A file *defining* the macro family is its own authority.
        if (std::regex_search(code[i], define))
            continue;
        if (allowed(raw, i, "contract-macro-include"))
            continue;
        findings.push_back(
            {p, static_cast<unsigned>(i + 1),
             "contract-macro-include",
             "header uses a GRAPHENE_* contract macro without "
             "including check/contracts.hh itself; transitive "
             "includes break under contracts-off builds"});
    }
}

void
Linter::boundaryFatal(const fs::path &path,
                      const std::vector<std::string> &code,
                      const std::vector<std::string> &raw,
                      std::vector<Finding> &findings) const
{
    // main()-boundary trees may exit on bad input, and the
    // logging/error/contract machinery implements the calls.
    if (pathContains(path, "bench/") ||
        pathContains(path, "examples/") ||
        pathContains(path, "tests/") ||
        pathContains(path, "common/logging") ||
        pathContains(path, "common/error") ||
        pathContains(path, "check/contracts"))
        return;
    // A call site: fatal( / panic(, optionally ::graphene::
    // qualified, not a longer identifier (unwrapOrFatal) and not a
    // member access.
    static const std::regex bad(
        R"((?:^|[^:\w.])(?:::graphene::\s*)?(?:fatal|panic)\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], bad))
            continue;
        if (allowed(raw, i, "boundary-fatal"))
            continue;
        findings.push_back(
            {path.generic_string(), static_cast<unsigned>(i + 1),
             "boundary-fatal",
             "fatal()/panic() in library code: return a typed "
             "Result/Error for bad external input, or use "
             "GRAPHENE_CHECK for internal invariants; process exits "
             "belong only in CLI/bench main() boundaries "
             "(DESIGN.md §9)"});
    }
}

void
Linter::rawThread(const fs::path &path,
                  const std::vector<std::string> &code,
                  const std::vector<std::string> &raw,
                  std::vector<Finding> &findings) const
{
    // The exp:: work-stealing pool is the one sanctioned thread
    // owner: all parallelism must flow through it so every parallel
    // code path inherits the determinism contract (DESIGN.md §10).
    if (pathContains(path, "src/exp/"))
        return;
    static const std::regex bad(
        R"(\bstd::(?:thread|jthread|async)\b)");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], bad))
            continue;
        if (allowed(raw, i, "raw-thread"))
            continue;
        findings.push_back(
            {path.generic_string(), static_cast<unsigned>(i + 1),
             "raw-thread",
             "direct std::thread/jthread/async outside src/exp/: "
             "route parallelism through exp::Pool so results stay "
             "deterministic for every jobs count (DESIGN.md §10)"});
    }
}

void
Linter::directLogging(const fs::path &path,
                      const std::vector<std::string> &code,
                      const std::vector<std::string> &raw,
                      std::vector<Finding> &findings) const
{
    // CLI/bench mains own their stdout, and common/logging is the
    // sanctioned implementation. (_allHot: fixtures live under
    // tools/, which would otherwise exempt them.)
    if (!_allHot && (pathContains(path, "bench/") ||
                     pathContains(path, "tools/") ||
                     pathContains(path, "examples/") ||
                     pathContains(path, "tests/") ||
                     pathContains(path, "common/logging")))
        return;
    // Word boundaries keep snprintf/strprintf/vsnprintf out; cerr is
    // deliberately allowed (progress lines, warnings).
    static const std::regex bad(
        R"(\bstd::cout\b|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], bad))
            continue;
        if (allowed(raw, i, "direct-logging"))
            continue;
        findings.push_back(
            {path.generic_string(), static_cast<unsigned>(i + 1),
             "direct-logging",
             "library code writes to stdout (std::cout / printf "
             "family): report through an obs:: probe or "
             "common/logging and let the CLI/bench boundary own the "
             "output stream"});
    }
}

std::vector<Finding>
Linter::lintFile(const fs::path &path) const
{
    std::vector<Finding> findings;
    std::string text;
    if (!graphene::toolscan::readFile(path, text)) {
        findings.push_back({path.generic_string(), 0, "io-error",
                            "cannot open file", "error"});
        return findings;
    }
    const std::vector<std::string> code = stripLines(text);
    const std::vector<std::string> raw = rawLines(text);

    rawDomainType(path, code, raw, findings);
    nondeterministicRng(path, code, raw, findings);
    unorderedMapIteration(path, code, raw, findings);
    floatType(path, code, raw, findings);
    contractMacroInclude(path, code, raw, findings);
    boundaryFatal(path, code, raw, findings);
    rawThread(path, code, raw, findings);
    directLogging(path, code, raw, findings);
    return findings;
}

using graphene::toolscan::lintableExtension;

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        "raw-domain-type", "nondeterministic-rng",
        "unordered-map-iteration", "float-type",
        "contract-macro-include", "boundary-fatal", "raw-thread",
        "direct-logging"};
    return rules;
}

/**
 * Self-test over the known-bad fixture set: each fixture file whose
 * name starts with a rule id (dashes as underscores) must produce at
 * least one finding of exactly that rule; files starting with
 * "clean" must produce none.
 */
int
selfTest(const fs::path &dir)
{
    if (!fs::is_directory(dir)) {
        std::cerr << "graphene_lint: fixture directory not found: "
                  << dir << "\n";
        return 2;
    }
    const Linter linter(/*treat_all_as_hot=*/true);
    unsigned checked = 0, failures = 0;
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.is_regular_file() && lintableExtension(e.path()))
            files.push_back(e.path());
    std::sort(files.begin(), files.end());

    for (const auto &file : files) {
        const std::string stem = file.stem().string();
        std::string expected;
        for (const auto &rule : allRules()) {
            std::string prefix = rule;
            std::replace(prefix.begin(), prefix.end(), '-', '_');
            if (stem.rfind(prefix, 0) == 0)
                expected = rule;
        }
        const bool expect_clean = stem.rfind("clean", 0) == 0;
        if (expected.empty() && !expect_clean) {
            std::cerr << "SELF-TEST SKIP " << file
                      << ": name matches no rule\n";
            continue;
        }
        ++checked;
        const auto findings = linter.lintFile(file);
        if (expect_clean) {
            if (findings.empty()) {
                std::cout << "SELF-TEST OK   " << file.filename()
                          << " (no findings, as expected)\n";
            } else {
                ++failures;
                std::cout << "SELF-TEST FAIL " << file.filename()
                          << ": expected clean, got "
                          << findings.size() << " finding(s):\n";
                for (const auto &f : findings)
                    std::cout << "  " << f.rule << " at line "
                              << f.line << "\n";
            }
            continue;
        }
        const bool hit = std::any_of(
            findings.begin(), findings.end(),
            [&](const Finding &f) { return f.rule == expected; });
        if (hit) {
            std::cout << "SELF-TEST OK   " << file.filename()
                      << " flagged by " << expected << "\n";
        } else {
            ++failures;
            std::cout << "SELF-TEST FAIL " << file.filename()
                      << ": expected a " << expected
                      << " finding, got " << findings.size()
                      << " other(s)\n";
        }
    }
    if (checked == 0) {
        std::cerr << "SELF-TEST FAIL: no fixtures found in " << dir
                  << "\n";
        return 1;
    }
    std::cout << checked << " fixture(s), " << failures
              << " failure(s)\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> raw_args(argv + 1, argv + argc);
    if (!raw_args.empty() && raw_args[0] == "--self-test") {
        const fs::path dir =
            raw_args.size() > 1 ? fs::path(raw_args[1])
                                : fs::path("tools/lint/fixtures");
        return selfTest(dir);
    }
    std::vector<std::string> args;
    std::string json_path;
    for (std::size_t i = 0; i < raw_args.size(); ++i) {
        const std::string &a = raw_args[i];
        if (a == "--help" || a == "-h") {
            std::cout
                << "usage: graphene_lint [--json PATH] [paths...]\n"
                   "       graphene_lint --self-test [fixture-dir]\n"
                   "Lints .cc/.hh/.cpp/.hpp/.h files under the "
                   "given paths (default: src).\n"
                   "--json PATH additionally writes the findings in "
                   "the shared machine-readable shape.\n";
            return 0;
        }
        if (a == "--json") {
            if (i + 1 >= raw_args.size()) {
                std::cerr << "graphene_lint: --json needs a path\n";
                return 2;
            }
            json_path = raw_args[++i];
            continue;
        }
        if (a.rfind("--", 0) == 0) {
            std::cerr << "graphene_lint: unknown option " << a
                      << "\n";
            return 2;
        }
        args.push_back(a);
    }
    if (args.empty())
        args.push_back("src");

    const Linter linter;
    const auto files =
        graphene::toolscan::collectFiles(args, "graphene_lint");
    std::vector<Finding> all;
    for (const auto &file : files) {
        const auto findings = linter.lintFile(file);
        all.insert(all.end(), findings.begin(), findings.end());
    }
    for (const auto &f : all)
        std::cout << graphene::toolscan::formatFinding(f) << "\n";
    if (!json_path.empty()) {
        std::ofstream os(json_path, std::ios::trunc);
        if (!os) {
            std::cerr << "graphene_lint: cannot write " << json_path
                      << "\n";
            return 2;
        }
        graphene::toolscan::writeFindingsJson(os, "graphene_lint",
                                              all);
    }
    if (all.empty()) {
        std::cout << "graphene_lint: " << files.size()
                  << " file(s) clean\n";
        return 0;
    }
    std::cout << "graphene_lint: " << all.size()
              << " finding(s) in " << files.size() << " file(s)\n";
    return 1;
}
