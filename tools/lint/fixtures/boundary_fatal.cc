// Known-bad fixture for the boundary-fatal rule: library-style code
// (this path is neither bench/, examples/, tests/, nor the
// logging/error/contract machinery) calling fatal()/panic() directly
// instead of returning a typed Result or using GRAPHENE_CHECK.
#include <cstdint>
#include <string>

namespace fixture {

void fatal(const char *fmt, ...);
void panic(const char *fmt, ...);

std::uint64_t
parseCount(const std::string &text)
{
    if (text.empty())
        fatal("empty count field");
    std::uint64_t total = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            panic("non-digit in count");
        total = total * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return total;
}

// A suppressed call must not fire:
void
shutdownNow()
{
    fatal("bye"); // lint: allow(boundary-fatal)
}

} // namespace fixture
