// Fixture that must produce zero findings: strong types, seeded RNG
// mentioned only in comments ("std::rand would be bad"), ordered
// containers, doubles, and a string literal containing float.
#include <cstdint>
#include <map>
#include <string>

namespace fixture {

struct Cycle
{
    std::uint64_t v;
};

double
meanLatency(const std::map<std::uint32_t, std::uint64_t> &latencies)
{
    double total = 0.0;
    std::uint64_t n = 0;
    for (const auto &kv : latencies) {
        total += static_cast<double>(kv.second);
        ++n;
    }
    const std::string note = "float and std::rand() in a string";
    (void)note;
    return n ? total / static_cast<double>(n) : 0.0;
}

// Counts stay raw: these identifiers must not trip raw-domain-type.
std::uint64_t
budget(std::uint64_t numRows, std::uint64_t rowsPerBank)
{
    return numRows * rowsPerBank;
}

} // namespace fixture
