// Known-bad fixture: nondeterministic / time-seeded randomness.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int
roll()
{
    std::srand(static_cast<unsigned>(time(nullptr)));
    std::random_device rd;
    std::mt19937 gen(rd());
    return std::rand() + static_cast<int>(gen());
}

} // namespace fixture
