// Known-bad fixture: single-precision float for a physical quantity.

namespace fixture {

float
energyPerAct(float nanojoules)
{
    return nanojoules * 0.5f;
}

} // namespace fixture
