// Known-bad fixture: contract macro used in a header that does not
// include check/contracts.hh itself.
#pragma once

#include <cstdint>

namespace fixture {

inline std::uint64_t
half(std::uint64_t n)
{
    GRAPHENE_EXPECTS(n % 2 == 0);
    return n / 2;
}

} // namespace fixture
