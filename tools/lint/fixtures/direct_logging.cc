// Fixture: library code writing straight to stdout. Reporting
// belongs behind an obs:: probe or common/logging; the CLI/bench
// boundary owns the output stream.

#include <cstdio>
#include <iostream>

void
reportProgress(int done)
{
    std::cout << "done " << done << "\n";

    std::printf("done %d\n", done);

    std::fprintf(stdout, "done %d\n", done);
}

void
reportAllowed(int done, char *buf, unsigned long len)
{
    // std::cerr and the formatting-only printf family stay legal.
    std::cerr << "progress " << done << "\n";
    std::snprintf(buf, len, "done %d", done);
}
