// Known-bad fixture: unmarked unordered_map iteration in a hot path.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Tracker
{
    std::unordered_map<std::uint32_t, std::uint64_t> entries;

    std::uint64_t
    sum() const
    {
        std::uint64_t total = 0;
        for (const auto &kv : entries)
            total += kv.second;
        return total;
    }

    std::uint64_t
    auditedSum() const
    {
        std::uint64_t total = 0;
        // lint: order-independent — pure sum, commutative.
        for (const auto &kv : entries)
            total += kv.second;
        return total;
    }
};

} // namespace fixture
