// Known-bad fixture: domain quantities declared as raw integers.
#include <cstdint>

namespace fixture {

std::uint64_t
nextCycle(std::uint64_t cycle)
{
    std::uint32_t row = 0;
    std::uint64_t addr = cycle * 64;
    return cycle + row + addr;
}

struct State
{
    std::uint64_t curCycle = 0;
    std::uint32_t aggressorRow = 0;
    std::uint64_t bankId = 0;
};

// Legitimate raw integers: counts and sizes must NOT fire.
std::uint64_t
countThings(std::uint64_t numRows, std::uint32_t rowsPerBank,
            std::uint64_t actCountLimitPerWindow)
{
    return numRows + rowsPerBank + actCountLimitPerWindow;
}

} // namespace fixture
