// Known-bad fixture: raw threading primitives outside src/exp/.
#include <future>
#include <thread>

namespace fixture {

void
spawn()
{
    std::thread worker([] {});
    auto task = std::async([] { return 1; });
    task.wait();
    worker.join();

    // Suppressed use (must NOT produce a finding):
    std::thread allowed([] {}); // lint: allow(raw-thread)
    allowed.join();

    // std::this_thread is fine — only thread creation is fenced.
    std::this_thread::yield();
}

} // namespace fixture
