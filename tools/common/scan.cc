#include "scan.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>

namespace graphene {
namespace toolscan {

namespace fs = std::filesystem;

std::vector<std::string>
stripLines(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 ||
                        (!std::isalnum(static_cast<unsigned char>(
                             text[i - 1])) &&
                         text[i - 1] != '_'))) {
                // Raw string literal R"delim( ... )delim": contents
                // may hold quotes, comment markers, and code-shaped
                // text; skip to the closing sequence, preserving
                // newlines.
                std::size_t k = i + 2;
                std::string delim;
                while (k < text.size() && text[k] != '(' &&
                       text[k] != '"' && delim.size() < 16)
                    delim += text[k++];
                if (k >= text.size() || text[k] != '(') {
                    out += c; // not a raw literal after all
                    break;
                }
                const std::string closer = ")" + delim + "\"";
                const std::size_t close =
                    text.find(closer, k + 1);
                out += "\"\"";
                const std::size_t stop =
                    close == std::string::npos
                        ? text.size()
                        : close + closer.size();
                for (std::size_t j = i; j < stop; ++j)
                    if (text[j] == '\n')
                        out += '\n';
                i = stop - 1;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                state = State::Char;
                out += '\'';
            } else {
                out += c;
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else if (c == '\n') {
                out += '\n';
            }
            break;
          case State::String:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else if (c == '\n') {
                out += '\n'; // unterminated; stay permissive
            }
            break;
          case State::Char:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else if (c == '\n') {
                out += '\n';
            }
            break;
        }
    }
    std::vector<std::string> lines;
    std::istringstream ss(out);
    std::string line;
    while (std::getline(ss, line))
        lines.push_back(line);

    // Preprocessor-disabled regions: blank everything from `#if 0`
    // to its matching `#else`/`#elif`/`#endif` (the #else branch IS
    // compiled, so scanning resumes there). Nested conditionals
    // inside the dead region are tracked only to find the match.
    static const std::regex if0(R"(^\s*#\s*if\s+0\b)");
    static const std::regex anyIf(
        R"(^\s*#\s*if(?:def|ndef)?\b)");
    static const std::regex elseOrElif(
        R"(^\s*#\s*el(?:se|if)\b)");
    static const std::regex endif(R"(^\s*#\s*endif\b)");
    int dead_depth = 0;
    for (auto &l : lines) {
        if (dead_depth == 0) {
            if (std::regex_search(l, if0)) {
                dead_depth = 1;
                l.clear();
            }
            continue;
        }
        const bool opens = std::regex_search(l, anyIf);
        const bool closes = std::regex_search(l, endif);
        const bool flips =
            dead_depth == 1 && std::regex_search(l, elseOrElif);
        l.clear();
        if (opens)
            ++dead_depth;
        else if (closes)
            --dead_depth;
        else if (flips)
            dead_depth = 0;
    }
    return lines;
}

std::vector<std::string>
rawLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line))
        lines.push_back(line);
    return lines;
}

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

bool
suppressed(const std::vector<std::string> &raw, std::size_t i,
           const std::string &marker)
{
    if (i < raw.size() && raw[i].find(marker) != std::string::npos)
        return true;
    return i > 0 && raw[i - 1].find(marker) != std::string::npos;
}

bool
allowMarker(const std::vector<std::string> &raw, std::size_t i,
            const std::string &tool, const std::string &rule)
{
    return suppressed(raw, i, tool + ": allow(" + rule + ")");
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
pathContains(const fs::path &p, const std::string &needle)
{
    return p.generic_string().find(needle) != std::string::npos;
}

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

namespace {

bool
insideFixtures(const fs::path &p)
{
    // Prefix match: fixtures/, fixtures_perf/, ... are all known-bad
    // corpora.
    for (const auto &part : p)
        if (part.generic_string().rfind("fixtures", 0) == 0)
            return true;
    return false;
}

} // namespace

std::vector<fs::path>
collectFiles(const std::vector<std::string> &args,
             const std::string &tool_name)
{
    std::vector<fs::path> files;
    for (const auto &arg : args) {
        const fs::path p(arg);
        if (fs::is_directory(p)) {
            // Fixture corpora under a walked tree are known-bad by
            // construction; an explicit argument inside one still
            // scans (the self-tests rely on that).
            const bool arg_in_fixtures = insideFixtures(p);
            for (const auto &e :
                 fs::recursive_directory_iterator(p)) {
                if (!e.is_regular_file() ||
                    !lintableExtension(e.path()))
                    continue;
                if (!arg_in_fixtures && insideFixtures(e.path()))
                    continue;
                files.push_back(e.path());
            }
        } else if (fs::is_regular_file(p)) {
            files.push_back(p);
        } else {
            std::cerr << tool_name << ": no such path: " << arg
                      << "\n";
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
writeFindingsJson(std::ostream &os, const std::string &tool,
                  const std::vector<Finding> &findings)
{
    std::size_t errors = 0, warnings = 0;
    for (const auto &f : findings)
        (f.severity == "warning" ? warnings : errors) += 1;
    os << "{\"tool\":" << jsonQuote(tool) << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            os << ",";
        os << "{\"file\":" << jsonQuote(f.file)
           << ",\"line\":" << f.line
           << ",\"rule\":" << jsonQuote(f.rule)
           << ",\"severity\":" << jsonQuote(f.severity)
           << ",\"message\":" << jsonQuote(f.message) << "}";
    }
    os << "],\"errors\":" << errors << ",\"warnings\":" << warnings
       << "}\n";
}

std::string
unqualifiedName(const std::string &name)
{
    const std::size_t colons = name.rfind("::");
    return colons == std::string::npos ? name
                                       : name.substr(colons + 2);
}

std::size_t
matchBrace(const std::string &text, std::size_t open_brace)
{
    int depth = 0;
    for (std::size_t i = open_brace; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

std::vector<ScannedFunction>
scanFunctions(const std::string &text)
{
    // name(params) [const] [noexcept] [-> x] [override/final] {   —
    // token level; the params must not contain ';', braces, or
    // nested parens.
    static const std::regex head(
        R"(([A-Za-z_~][\w:]*)\s*\(([^;{}()]*)\)\s*)"
        R"((?:const\b\s*)?(?:noexcept\b\s*)?(?:->\s*[\w:<>&\s]+)?)"
        R"((?:override\b\s*)?(?:final\b\s*)?\{)");
    static const std::set<std::string> keywords = {
        "if", "for", "while", "switch", "catch", "return"};

    std::vector<ScannedFunction> out;
    auto begin = std::sregex_iterator(text.begin(), text.end(), head);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::smatch &m = *it;
        const std::string name = m[1].str();
        if (keywords.count(unqualifiedName(name)))
            continue;
        const std::size_t name_off =
            static_cast<std::size_t>(m.position(0));
        const std::size_t open =
            name_off + static_cast<std::size_t>(m.length(0)) - 1;
        const std::size_t close = matchBrace(text, open);
        if (close == std::string::npos)
            continue;
        ScannedFunction def;
        def.name = name;
        def.params = m[2].str();
        def.bodyBegin = open + 1;
        def.bodyEnd = close;
        def.nameOffset = name_off;
        out.push_back(std::move(def));
    }
    return out;
}

std::vector<CallSite>
scanCalls(const std::string &text, std::size_t begin,
          std::size_t end)
{
    // An identifier (possibly qualified) directly followed by '('.
    static const std::regex call(R"(([A-Za-z_][\w:]*)\s*\()");
    static const std::set<std::string> keywords = {
        "if",      "for",      "while",   "switch",   "catch",
        "return",  "sizeof",   "alignof", "decltype", "throw",
        "new",     "delete",   "assert",  "defined",  "co_await",
        "co_return", "static_assert", "noexcept", "alignas"};

    std::vector<CallSite> out;
    if (end > text.size())
        end = text.size();
    if (begin >= end)
        return out;
    auto first = std::sregex_iterator(text.begin() + begin,
                                      text.begin() + end, call);
    for (auto it = first; it != std::sregex_iterator(); ++it) {
        const std::smatch &m = *it;
        const std::string name = m[1].str();
        if (keywords.count(name) ||
            keywords.count(unqualifiedName(name)))
            continue;
        const std::size_t off =
            begin + static_cast<std::size_t>(m.position(1));
        CallSite site;
        site.name = name;
        site.offset = off;

        // Receiver: walk left past whitespace to `.` or `->`, then
        // take the identifier before it.
        std::size_t k = off;
        while (k > begin && std::isspace(static_cast<unsigned char>(
                                text[k - 1])))
            --k;
        std::size_t recv_end = 0;
        if (k > begin && text[k - 1] == '.') {
            site.dot = true;
            recv_end = k - 1;
        } else if (k > begin + 1 && text[k - 1] == '>' &&
                   text[k - 2] == '-') {
            site.arrow = true;
            recv_end = k - 2;
        }
        if (site.dot || site.arrow) {
            std::size_t r = recv_end;
            while (r > begin) {
                const char c = text[r - 1];
                if (std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_')
                    --r;
                else
                    break;
            }
            site.receiver = text.substr(r, recv_end - r);
        }
        out.push_back(std::move(site));
    }
    return out;
}

std::string
formatFinding(const Finding &f)
{
    std::string out = f.file + ":" + std::to_string(f.line) + ": ";
    if (f.severity == "warning")
        out += "warning: ";
    out += "[" + f.rule + "] " + f.message;
    return out;
}

std::size_t
errorCount(const std::vector<Finding> &findings)
{
    std::size_t n = 0;
    for (const auto &f : findings)
        if (f.severity != "warning")
            ++n;
    return n;
}

} // namespace toolscan
} // namespace graphene
