#include "scan.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

namespace graphene {
namespace toolscan {

namespace fs = std::filesystem;

std::vector<std::string>
stripLines(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                state = State::Char;
                out += '\'';
            } else {
                out += c;
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else if (c == '\n') {
                out += '\n';
            }
            break;
          case State::String:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else if (c == '\n') {
                out += '\n'; // unterminated; stay permissive
            }
            break;
          case State::Char:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else if (c == '\n') {
                out += '\n';
            }
            break;
        }
    }
    std::vector<std::string> lines;
    std::istringstream ss(out);
    std::string line;
    while (std::getline(ss, line))
        lines.push_back(line);
    return lines;
}

std::vector<std::string>
rawLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line))
        lines.push_back(line);
    return lines;
}

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

bool
suppressed(const std::vector<std::string> &raw, std::size_t i,
           const std::string &marker)
{
    if (i < raw.size() && raw[i].find(marker) != std::string::npos)
        return true;
    return i > 0 && raw[i - 1].find(marker) != std::string::npos;
}

bool
allowMarker(const std::vector<std::string> &raw, std::size_t i,
            const std::string &tool, const std::string &rule)
{
    return suppressed(raw, i, tool + ": allow(" + rule + ")");
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
pathContains(const fs::path &p, const std::string &needle)
{
    return p.generic_string().find(needle) != std::string::npos;
}

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

namespace {

bool
insideFixtures(const fs::path &p)
{
    for (const auto &part : p)
        if (part == "fixtures")
            return true;
    return false;
}

} // namespace

std::vector<fs::path>
collectFiles(const std::vector<std::string> &args,
             const std::string &tool_name)
{
    std::vector<fs::path> files;
    for (const auto &arg : args) {
        const fs::path p(arg);
        if (fs::is_directory(p)) {
            // Fixture corpora under a walked tree are known-bad by
            // construction; an explicit argument inside one still
            // scans (the self-tests rely on that).
            const bool arg_in_fixtures = insideFixtures(p);
            for (const auto &e :
                 fs::recursive_directory_iterator(p)) {
                if (!e.is_regular_file() ||
                    !lintableExtension(e.path()))
                    continue;
                if (!arg_in_fixtures && insideFixtures(e.path()))
                    continue;
                files.push_back(e.path());
            }
        } else if (fs::is_regular_file(p)) {
            files.push_back(p);
        } else {
            std::cerr << tool_name << ": no such path: " << arg
                      << "\n";
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
writeFindingsJson(std::ostream &os, const std::string &tool,
                  const std::vector<Finding> &findings)
{
    std::size_t errors = 0, warnings = 0;
    for (const auto &f : findings)
        (f.severity == "warning" ? warnings : errors) += 1;
    os << "{\"tool\":" << jsonQuote(tool) << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            os << ",";
        os << "{\"file\":" << jsonQuote(f.file)
           << ",\"line\":" << f.line
           << ",\"rule\":" << jsonQuote(f.rule)
           << ",\"severity\":" << jsonQuote(f.severity)
           << ",\"message\":" << jsonQuote(f.message) << "}";
    }
    os << "],\"errors\":" << errors << ",\"warnings\":" << warnings
       << "}\n";
}

std::string
formatFinding(const Finding &f)
{
    std::string out = f.file + ":" + std::to_string(f.line) + ": ";
    if (f.severity == "warning")
        out += "warning: ";
    out += "[" + f.rule + "] " + f.message;
    return out;
}

std::size_t
errorCount(const std::vector<Finding> &findings)
{
    std::size_t n = 0;
    for (const auto &f : findings)
        if (f.severity != "warning")
            ++n;
    return n;
}

} // namespace toolscan
} // namespace graphene
