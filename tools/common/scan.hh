/**
 * @file
 * Shared scanner utilities for the repo's static-analysis tools
 * (tools/lint/graphene_lint, tools/analyze/graphene_analyze).
 *
 * Both tools work at the token/regex level (deliberately no libclang
 * dependency) and share the same mechanics: walk a file tree, strip
 * comments and string literals while preserving line structure, look
 * up suppression markers on the raw text, and report findings in one
 * machine-readable shape. This library is that common substrate;
 * each tool keeps only its rules.
 *
 * Buildable with a bare C++17 toolchain (CI compiles the tools with
 * plain g++, no CMake), so nothing here may depend on src/.
 */

#ifndef TOOLS_COMMON_SCAN_HH
#define TOOLS_COMMON_SCAN_HH

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace graphene {
namespace toolscan {

/** One reported defect. `severity` is "error" (affects the exit
 *  status) or "warning" (reported, never fatal). */
struct Finding
{
    std::string file;
    unsigned line = 0;
    std::string rule;
    std::string message;
    std::string severity = "error";
};

/**
 * Remove comments and string/character literal contents while
 * preserving line structure, so rule regexes never fire on prose.
 * Raw string literals (R"delim(...)delim") and preprocessor-disabled
 * `#if 0` regions are stripped too — both can hold arbitrary
 * code-shaped text that must never reach a rule. Raw lines are kept
 * separately (rawLines) for marker lookup.
 */
std::vector<std::string> stripLines(const std::string &text);

/** Split @p text into lines verbatim. */
std::vector<std::string> rawLines(const std::string &text);

/** Read a whole file; false (and untouched @p out) when unreadable. */
bool readFile(const std::filesystem::path &path, std::string &out);

/** True when line @p i or the line directly above carries @p marker. */
bool suppressed(const std::vector<std::string> &raw, std::size_t i,
                const std::string &marker);

/**
 * True when a `<tool>: allow(<rule>)` waiver covers line @p i (the
 * line itself or the one above), e.g. allowMarker(raw, i, "lint",
 * "float-type") matches "lint: allow(float-type)".
 */
bool allowMarker(const std::vector<std::string> &raw, std::size_t i,
                 const std::string &tool, const std::string &rule);

/** True when @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** True when @p p's generic path contains @p needle. */
bool pathContains(const std::filesystem::path &p,
                  const std::string &needle);

/** True for the C++ source extensions the tools scan. */
bool lintableExtension(const std::filesystem::path &p);

/**
 * Expand files and directory trees into a sorted list of scannable
 * C++ sources. Unknown paths report to stderr under @p tool_name and
 * are skipped. Paths with a component named "fixtures" are excluded
 * from directory walks (known-bad corpora), unless the argument
 * itself points inside one.
 */
std::vector<std::filesystem::path>
collectFiles(const std::vector<std::string> &args,
             const std::string &tool_name);

/** JSON string escaping (quotes included in the return value). */
std::string jsonQuote(const std::string &s);

/**
 * The one machine-readable findings shape both tools emit:
 *   {"tool":"<name>","findings":[{"file":...,"line":N,"rule":...,
 *    "message":...,"severity":...}],"errors":N,"warnings":N}
 * Findings are written in the given order.
 */
void writeFindingsJson(std::ostream &os, const std::string &tool,
                       const std::vector<Finding> &findings);

/** Render one finding as the human-readable single-line report. */
std::string formatFinding(const Finding &f);

// ---- function-definition and call-edge extraction ------------------
//
// Token-level (deliberately not a C++ parser): good enough to compute
// "which functions exist and who calls whom by name", which is what
// the call-graph-aware passes (hot-region perf debt) need. Operates
// on comment/string-stripped text joined with '\n' so literals and
// disabled regions never fabricate edges.

/** One function definition found in stripped text. */
struct ScannedFunction
{
    /** Name as written, possibly qualified ("Cache::addressOf"). */
    std::string name;

    /** Parameter-list text between the parens. */
    std::string params;

    std::size_t nameOffset = 0; ///< Offset of the name in the text.
    std::size_t bodyBegin = 0;  ///< Offset just past the '{'.
    std::size_t bodyEnd = 0;    ///< Offset of the matching '}'.
};

/** Unqualified tail of @p name ("Cache::addressOf" -> "addressOf"). */
std::string unqualifiedName(const std::string &name);

/**
 * Offset of the '}' matching the '{' at @p open_brace;
 * std::string::npos when unbalanced.
 */
std::size_t matchBrace(const std::string &text,
                       std::size_t open_brace);

/**
 * Scan stripped text for function definitions: free functions,
 * out-of-line member definitions, and in-class bodies. Control
 * keywords (if/for/while/switch/catch) are skipped. Not a parser —
 * heavily-templated signatures or parens inside parameter defaults
 * may be missed, which the repo's conventions avoid.
 */
std::vector<ScannedFunction> scanFunctions(const std::string &text);

/** One call site found inside a function body. */
struct CallSite
{
    /** Callee name as written (possibly qualified). */
    std::string name;

    std::size_t offset = 0; ///< Offset of the name in the text.

    /** Dispatched through `->` (pointer receiver). */
    bool arrow = false;

    /** Dispatched through `.` (object/reference receiver). */
    bool dot = false;

    /** Receiver token when arrow/dot ("this", "_tracker", ...). */
    std::string receiver;
};

/**
 * Extract call-shaped sites (`name(` preceded by neither a type
 * keyword nor a definition context) from text[begin, end). Keyword
 * heads (if/for/while/...), casts, and declarations with bodies are
 * excluded; `obj.f(` / `ptr->f(` record the receiver so callers can
 * reason about dispatch.
 */
std::vector<CallSite> scanCalls(const std::string &text,
                                std::size_t begin, std::size_t end);

/** Count of findings with severity "error". */
std::size_t errorCount(const std::vector<Finding> &findings);

} // namespace toolscan
} // namespace graphene

#endif // TOOLS_COMMON_SCAN_HH
