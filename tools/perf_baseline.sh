#!/usr/bin/env bash
#
# Seed / refresh the committed perf trajectory (bench/BENCH_graphene.json)
# from the fig8 `.meta` profiling sidecar: per-scheme throughput of the
# simulator hot path (acts_per_ms over cache-MISS cells only — hits
# never execute, so their wall time measures the cache, not the
# simulator).
#
# Usage:
#   tools/perf_baseline.sh                 # run fig8 fresh, then aggregate
#   tools/perf_baseline.sh path/to.jsonl.meta   # aggregate an existing sidecar
#
# The output is a snapshot, not a benchmark suite: numbers are
# machine-dependent, so the committed file records the generating
# command and grid size next to the per-scheme aggregates, and the
# ROADMAP perf work gates on *relative* movement.
set -euo pipefail
cd "$(dirname "$0")/.."

out=bench/BENCH_graphene.json
windows=0.02
meta=${1:-}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [[ -z "$meta" ]]; then
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$(nproc)" --target fig8_overhead \
        >/dev/null
    ./build/bench/fig8_overhead --windows "$windows" --jobs 1 \
        --no-progress --json "$tmp/fig8.jsonl" >/dev/null
    meta="$tmp/fig8.jsonl.meta"
fi

if [[ ! -s "$meta" ]]; then
    echo "perf_baseline: no sidecar at $meta (fig8 run without" \
         "profiling support, or wrong path?); $out left untouched" >&2
    exit 1
fi

# Aggregate into a temp file first: a failure part-way through must
# never truncate or corrupt the committed baseline.
awk -v windows="$windows" '
function jstr(line, key,    re, m) {
    re = "\"" key "\":\"[^\"]*\""
    if (match(line, re) == 0) return ""
    m = substr(line, RSTART, RLENGTH)
    sub("\"" key "\":\"", "", m); sub("\"$", "", m)
    return m
}
function jnum(line, key,    re, m) {
    re = "\"" key "\":[-0-9.eE+]+"
    if (match(line, re) == 0) return ""
    m = substr(line, RSTART, RLENGTH)
    sub("\"" key "\":", "", m)
    return m + 0
}
{
    scheme = jstr($0, "scheme")
    if (scheme == "" || jstr($0, "cache") != "miss") next
    apm = jnum($0, "acts_per_ms")
    if (apm == "" || apm + 0 <= 0) {
        printf "perf_baseline: line %d of the sidecar has a missing" \
            " or non-numeric acts_per_ms: %s\n", NR, $0 \
            > "/dev/stderr"
        fatal = 1
        exit 1
    }
    n[scheme]++
    sum[scheme] += apm
    if (!(scheme in lo) || apm < lo[scheme]) lo[scheme] = apm
    if (apm > hi[scheme]) hi[scheme] = apm
}
END {
    if (fatal) exit 1
    if (length(n) == 0) {
        print "perf_baseline: sidecar has no cache-miss cells" \
            > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"bench\": \"fig8_overhead\",\n"
    printf "  \"metric\": \"acts_per_ms\",\n"
    printf "  \"windows\": %s,\n", windows
    printf "  \"note\": \"cache-miss cells only; regenerate with tools/perf_baseline.sh\",\n"
    printf "  \"schemes\": {\n"
    # Sort scheme names ourselves (asorti is gawk-only; mawk lacks it).
    m = 0
    for (s in n) order[++m] = s
    for (i = 2; i <= m; i++)
        for (j = i; j > 1 && order[j] < order[j - 1]; j--) {
            t = order[j]; order[j] = order[j - 1]; order[j - 1] = t
        }
    for (i = 1; i <= m; i++) {
        s = order[i]
        printf "    \"%s\": {\"cells\": %d, \"mean\": %.1f, \"min\": %.1f, \"max\": %.1f}%s\n", \
            s, n[s], sum[s] / n[s], lo[s], hi[s], i < m ? "," : ""
    }
    printf "  }\n}\n"
}' "$meta" > "$tmp/baseline.json" || {
    echo "perf_baseline: aggregation failed; $out left untouched" >&2
    exit 1
}

if [[ ! -s "$tmp/baseline.json" ]]; then
    echo "perf_baseline: aggregation produced no output;" \
         "$out left untouched" >&2
    exit 1
fi

mv "$tmp/baseline.json" "$out"
echo "perf_baseline: wrote $out"
cat "$out"
