#!/usr/bin/env bash
#
# One-stop local verification: warnings-as-errors build + tests,
# ASan/UBSan build + tests, the contracts-off zero-cost probe, and
# clang-tidy when available. Mirrors the CI matrix so a clean run here
# means a clean run there.
#
# Usage:
#   tools/run_checks.sh            # the standard battery
#   RUN_TSAN=1 tools/run_checks.sh # additionally run the TSan suite
#
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc)
failures=0

step() { printf '\n==== %s ====\n' "$*"; }

build_and_test() {
    local preset=$1
    cmake --preset "$preset" >/dev/null
    cmake --build --preset "$preset" -j "$jobs"
    ctest --preset "$preset" -j "$jobs"
}

step "werror: -Wall -Wextra -Werror build + full test suite"
build_and_test werror

step "asan: AddressSanitizer + UBSan build + full test suite"
build_and_test asan

if [[ "${RUN_TSAN:-0}" != "0" ]]; then
    step "tsan: ThreadSanitizer build + full test suite"
    build_and_test tsan
else
    step "tsan: skipped (set RUN_TSAN=1 to enable)"
fi

step "nocontracts: contracts compiled out, suite still green"
build_and_test nocontracts

# Zero-cost probe: with GRAPHENE_CONTRACTS=OFF the contract message
# strings must not survive into the instrumented libraries. Pick a
# message that only exists as a contract argument.
probe_string="tracked row fell to the spillover floor"
if grep -aq "$probe_string" build-nocontracts/src/core/libgraphene_core.a; then
    echo "FAIL: contract strings present in a contracts-off build"
    failures=$((failures + 1))
else
    echo "OK: no contract residue in the contracts-off core library"
fi
if ! grep -aq "$probe_string" build-werror/src/core/libgraphene_core.a; then
    echo "FAIL: probe string missing from the checked build" \
         "(probe is stale — update it)"
    failures=$((failures + 1))
fi

step "obsoff: observability compiled out, suite still green"
build_and_test obsoff

# Zero-size probe: the obs-off build's fig8 artifact must be
# byte-identical to the instrumented build's — tracing can never
# perturb results, and compiling it out can never change them.
step "obsoff: fig8 artifact parity against the instrumented build"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target fig8_overhead
./build-obsoff/bench/fig8_overhead --windows 0.02 --jobs "$jobs" \
    --no-progress --json build-obsoff/fig8-parity.jsonl >/dev/null
./build/bench/fig8_overhead --windows 0.02 --jobs "$jobs" \
    --no-progress --json build/fig8-parity.jsonl >/dev/null
if cmp -s build-obsoff/fig8-parity.jsonl build/fig8-parity.jsonl; then
    echo "OK: obs-off and instrumented fig8 JSONL are byte-identical"
else
    echo "FAIL: obs-off fig8 JSONL diverges from the instrumented build"
    failures=$((failures + 1))
fi

step "graphene_lint: repo-specific static analysis (self-test + src)"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target graphene_lint
./build/tools/lint/graphene_lint --self-test tools/lint/fixtures
./build/tools/lint/graphene_lint src

step "graphene_analyze: structural analysis (self-test + whole tree)"
cmake --build --preset default -j "$jobs" --target graphene_analyze
./build/tools/analyze/graphene_analyze --self-test tools/analyze/fixtures
./build/tools/analyze/graphene_analyze --self-test tools/analyze/fixtures_perf
./build/tools/analyze/graphene_analyze --root . \
    --json build/analyze-findings.json

step "perf gate: fig8 throughput vs committed trajectory"
tools/perf_gate.sh

step "clang-tidy: bugprone / performance / core-guidelines"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    mapfile -t sources < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -p build -quiet "${sources[@]}"
    else
        clang-tidy -p build --quiet "${sources[@]}"
    fi
else
    echo "skipped: clang-tidy not installed"
fi

if [[ "$failures" -ne 0 ]]; then
    echo
    echo "$failures check(s) FAILED"
    exit 1
fi
echo
echo "all checks passed"
