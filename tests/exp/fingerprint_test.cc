/**
 * @file
 * Fingerprint sensitivity: every tagged field's name, type, order,
 * and value must reach the digest, and the fault-injection
 * perturbation corpus must never alias a perturbed scheme spec onto
 * the base spec's fingerprint (a collision there would serve stale
 * cache entries for a different configuration).
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "exp/fingerprint.hh"
#include "inject/degradation.hh"
#include "sim/experiment.hh"

namespace {

using namespace graphene;
using exp::Fingerprint;

TEST(ExpFingerprint, ValueReachesDigest)
{
    Fingerprint a, b;
    a.field("x", std::uint64_t{1});
    b.field("x", std::uint64_t{2});
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ExpFingerprint, FieldNameReachesDigest)
{
    Fingerprint a, b;
    a.field("x", std::uint64_t{1});
    b.field("y", std::uint64_t{1});
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ExpFingerprint, FieldOrderReachesDigest)
{
    Fingerprint a, b;
    a.field("x", std::uint64_t{1}).field("y", std::uint64_t{2});
    b.field("y", std::uint64_t{2}).field("x", std::uint64_t{1});
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ExpFingerprint, TypeMarkerSeparatesEqualBitPatterns)
{
    // uint64 1, bool true, and the string "\x01" must all hash
    // differently under the same field name.
    Fingerprint u, b, s;
    u.field("v", std::uint64_t{1});
    b.field("v", true);
    s.field("v", std::string("\x01"));
    EXPECT_NE(u.digest(), b.digest());
    EXPECT_NE(u.digest(), s.digest());
    EXPECT_NE(b.digest(), s.digest());
}

TEST(ExpFingerprint, DoubleHashesExactBitPattern)
{
    Fingerprint a, b;
    a.field("v", 0.1);
    b.field("v", 0.1 + 1e-18); // same value after rounding
    EXPECT_EQ(a.digest(), b.digest());

    Fingerprint c;
    c.field("v", 0.2);
    EXPECT_NE(a.digest(), c.digest());
}

TEST(ExpFingerprint, ConcatenationIsNotAmbiguous)
{
    // ("ab", "c") vs ("a", "bc"): length prefixes must separate
    // adjacent string fields.
    Fingerprint a, b;
    a.field("v", std::string("ab")).field("w", std::string("c"));
    b.field("v", std::string("a")).field("w", std::string("bc"));
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ExpFingerprint, HexIsFixedWidth)
{
    EXPECT_EQ(Fingerprint::hex(0), "0000000000000000");
    EXPECT_EQ(Fingerprint::hex(0xabcULL), "0000000000000abc");
    EXPECT_EQ(Fingerprint::hex(~0ULL), "ffffffffffffffff");
}

TEST(ExpFingerprint, DeriveSeedDecorrelates)
{
    // Consecutive digests must not map to consecutive seeds.
    const std::uint64_t s1 = exp::deriveSeed(1);
    const std::uint64_t s2 = exp::deriveSeed(2);
    EXPECT_NE(s1, 1u);
    EXPECT_NE(s2 - s1, 1u);
    EXPECT_EQ(s1, exp::deriveSeed(1));
}

/**
 * Satellite: drive the production scheme-spec fingerprint with the
 * fault-injection perturbation corpus. Every perturbed spec that
 * differs from the base in any field must hash differently; specs
 * the perturbation happened to leave unchanged must hash equal.
 */
TEST(ExpFingerprint, PerturbedSchemeSpecsNeverAliasTheBase)
{
    schemes::SchemeSpec base;
    base.kind = schemes::SchemeKind::Graphene;
    const std::uint64_t base_digest = sim::schemeSpecDigest(base);

    unsigned changed = 0;
    inject::perturbSchemeSpecs(
        base, 200, 12345,
        [&](const schemes::SchemeSpec &spec) {
            const bool same_fields =
                spec.rowHammerThreshold == base.rowHammerThreshold &&
                spec.blastRadius == base.blastRadius &&
                spec.grapheneK == base.grapheneK;
            const std::uint64_t digest = sim::schemeSpecDigest(spec);
            EXPECT_EQ(digest == base_digest, same_fields)
                << "threshold=" << spec.rowHammerThreshold
                << " blast=" << spec.blastRadius
                << " k=" << spec.grapheneK;
            if (!same_fields)
                ++changed;
        });
    // The corpus must actually exercise the property.
    EXPECT_GT(changed, 100u);
}

TEST(ExpFingerprint, SchemeKindReachesSchemeDigest)
{
    schemes::SchemeSpec a, b;
    a.kind = schemes::SchemeKind::Graphene;
    b.kind = schemes::SchemeKind::Para;
    EXPECT_NE(sim::schemeSpecDigest(a), sim::schemeSpecDigest(b));
}

} // namespace
