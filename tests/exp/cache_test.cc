/**
 * @file
 * Content-addressed cache: hits reproduce the stored record
 * bit-for-bit, any fingerprint or version-tag change re-addresses
 * the entry, and corruption degrades to a miss — never a wrong
 * result and never an abort.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/cache.hh"
#include "exp/fingerprint.hh"
#include "inject/degradation.hh"
#include "sim/experiment.hh"

namespace {

using namespace graphene;
using exp::Cache;
using exp::CellKey;
using exp::CellResult;

std::string
freshDir(const char *name)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    return dir.string();
}

CellKey
sampleKey()
{
    CellKey key;
    key.experiment = "cache-test";
    key.workload = "mcf";
    key.scheme = "Graphene";
    key.fingerprint = 0x1234abcd5678ef00ULL;
    return key;
}

CellResult
sampleResult()
{
    CellResult r;
    r.stats.acts = 12345;
    r.stats.requests = 67890;
    r.stats.victimRowsRefreshed = 42;
    r.stats.energyOverhead = 0.0034;
    r.stats.perfLoss = 1.0 / 3.0; // exercises round-trip exactness
    r.stats.windows = 0.02;
    r.stats.coreRequests = {11, 22, 33};
    return r;
}

TEST(ExpCache, MissOnEmptyDirectory)
{
    const Cache cache(freshDir("exp-cache-miss"));
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
}

TEST(ExpCache, StoreThenLoadRoundTrips)
{
    const Cache cache(freshDir("exp-cache-roundtrip"));
    const auto key = sampleKey();
    const auto result = sampleResult();
    cache.store(key, result);

    const auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, result);
}

TEST(ExpCache, HitIsBitForBit)
{
    // The stored payload is the deterministic record line itself:
    // re-serialising the loaded result must reproduce the file's
    // bytes exactly (this is what keeps warm-cache JSONL artifacts
    // byte-identical to cold ones).
    const Cache cache(freshDir("exp-cache-bits"));
    const auto key = sampleKey();
    const auto result = sampleResult();
    cache.store(key, result);

    std::ifstream in(cache.entryPath(key));
    std::string stored;
    ASSERT_TRUE(std::getline(in, stored));
    EXPECT_EQ(stored, exp::cellRecordLine(key, *cache.load(key)));
    EXPECT_EQ(stored, exp::cellRecordLine(key, result));
}

TEST(ExpCache, FingerprintChangeIsAMiss)
{
    const Cache cache(freshDir("exp-cache-fp"));
    auto key = sampleKey();
    cache.store(key, sampleResult());

    key.fingerprint ^= 1; // any spec change changes the fingerprint
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ExpCache, VersionTagBumpInvalidatesEveryEntry)
{
    const auto dir = freshDir("exp-cache-version");
    const auto key = sampleKey();
    const Cache v1(dir, "exp-test-v1");
    v1.store(key, sampleResult());
    ASSERT_TRUE(v1.load(key).has_value());

    const Cache v2(dir, "exp-test-v2");
    EXPECT_FALSE(v2.load(key).has_value());
    EXPECT_NE(v1.entryPath(key), v2.entryPath(key));
}

TEST(ExpCache, CorruptEntryDegradesToMiss)
{
    const Cache cache(freshDir("exp-cache-corrupt"));
    const auto key = sampleKey();
    cache.store(key, sampleResult());

    std::ofstream(cache.entryPath(key), std::ios::trunc)
        << "{\"not\":\"a cell record\"}\n";
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ExpCache, ForeignEntryUnderOurAddressIsAMiss)
{
    // A record whose own fingerprint field disagrees with the key
    // (renamed or hand-copied file) must not be served.
    const Cache cache(freshDir("exp-cache-foreign"));
    const auto key = sampleKey();
    auto other = key;
    other.fingerprint = 0x9999999999999999ULL;
    std::filesystem::create_directories(cache.dir());
    std::ofstream(cache.entryPath(key), std::ios::trunc)
        << exp::cellRecordLine(other, sampleResult()) << "\n";
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ExpCache, SkippedCellsCacheTheirError)
{
    const Cache cache(freshDir("exp-cache-error"));
    const auto key = sampleKey();
    CellResult skipped;
    skipped.error = "scheme spec: blast radius must be positive";
    cache.store(key, skipped);

    const auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->skipped());
    EXPECT_EQ(loaded->error, skipped.error);
}

/**
 * Satellite: every perturbed scheme spec that actually changes a
 * field must land at a different cache address (via its different
 * fingerprint), so no perturbation can be served a stale entry.
 */
TEST(ExpCache, PerturbedSpecsNeverShareACacheAddress)
{
    const Cache cache(freshDir("exp-cache-perturb"));
    schemes::SchemeSpec base;
    base.kind = schemes::SchemeKind::Graphene;
    auto key = sampleKey();
    key.fingerprint = sim::schemeSpecDigest(base);
    const std::string base_path = cache.entryPath(key);

    inject::perturbSchemeSpecs(
        base, 100, 999, [&](const schemes::SchemeSpec &spec) {
            const bool same_fields =
                spec.rowHammerThreshold == base.rowHammerThreshold &&
                spec.blastRadius == base.blastRadius &&
                spec.grapheneK == base.grapheneK;
            auto perturbed = key;
            perturbed.fingerprint = sim::schemeSpecDigest(spec);
            EXPECT_EQ(cache.entryPath(perturbed) == base_path,
                      same_fields);
        });
}

} // namespace
