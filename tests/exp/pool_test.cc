/**
 * @file
 * Work-stealing pool: every index runs exactly once for every jobs
 * count, exceptions propagate to the caller, and the pool leaves no
 * state behind between parallelFor calls. These tests are the ones
 * the CI ThreadSanitizer job runs at --jobs 8.
 */

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/pool.hh"

namespace {

using graphene::exp::Pool;

void
expectEachIndexOnce(unsigned jobs, std::size_t n)
{
    Pool pool(jobs);
    std::vector<std::atomic<unsigned>> counts(n);
    pool.parallelFor(n, [&](std::size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1u) << "index " << i;
}

TEST(ExpPool, EachIndexRunsExactlyOnceSingleWorker)
{
    expectEachIndexOnce(1, 1000);
}

TEST(ExpPool, EachIndexRunsExactlyOnceFourWorkers)
{
    expectEachIndexOnce(4, 1000);
}

TEST(ExpPool, EachIndexRunsExactlyOnceEightWorkers)
{
    expectEachIndexOnce(8, 1000);
}

TEST(ExpPool, MoreWorkersThanWork)
{
    expectEachIndexOnce(16, 3);
}

TEST(ExpPool, EmptyRangeIsANoOp)
{
    Pool pool(4);
    std::atomic<unsigned> calls{0};
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0u);
}

TEST(ExpPool, DefaultJobsIsPositive)
{
    EXPECT_GE(graphene::exp::defaultJobs(), 1u);
    EXPECT_EQ(Pool(0).jobs(), graphene::exp::defaultJobs());
}

TEST(ExpPool, ExceptionPropagatesToCaller)
{
    Pool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "cell 37");
                                  }),
                 std::runtime_error);
}

TEST(ExpPool, PoolIsReusableAfterAnException)
{
    Pool pool(2);
    try {
        pool.parallelFor(10, [](std::size_t) {
            throw std::runtime_error("boom");
        });
    } catch (const std::runtime_error &) {
    }
    expectEachIndexOnce(2, 100);
    std::atomic<unsigned> calls{0};
    pool.parallelFor(50, [&](std::size_t) {
        calls.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(calls.load(), 50u);
}

TEST(ExpPool, WorkersActuallyShareTheRange)
{
    // With enough work and >1 workers, at least two distinct threads
    // must participate (the caller runs worker 0, so thread ids of
    // all bodies being equal would mean the spawned workers starved).
    Pool pool(4);
    std::atomic<unsigned> spawned_ran{0};
    const auto caller = std::this_thread::get_id();
    pool.parallelFor(2000, [&](std::size_t) {
        if (std::this_thread::get_id() != caller)
            spawned_ran.fetch_add(1, std::memory_order_relaxed);
    });
    // Scheduling is free to be unfair, but on a 2000-cell range a
    // fully-starved pool would be a bug; tolerate single-core hosts
    // by only requiring the range completed (asserted above via
    // parallelFor returning) and recording participation.
    SUCCEED() << "spawned workers ran " << spawned_ran.load()
              << " cells";
}

TEST(ExpPoolResumable, EachItemRunsUntilItRetires)
{
    for (const unsigned jobs : {1u, 4u}) {
        Pool pool(jobs);
        // Item i needs i+1 turns to finish; count the turns.
        const std::size_t n = 16;
        std::vector<std::atomic<unsigned>> turns(n);
        pool.runResumable(n, [&](std::size_t i) {
            const unsigned seen =
                turns[i].fetch_add(1, std::memory_order_relaxed) + 1;
            return seen < i + 1; // true: re-enqueue
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(turns[i].load(), i + 1)
                << "item " << i << " at jobs=" << jobs;
    }
}

TEST(ExpPoolResumable, SingleWorkerIsRoundRobinInIndexOrder)
{
    // jobs == 1 is the deterministic reference schedule: items take
    // turns in index order, so the observed sequence is exactly
    // 0,1,2,0,1,2,... until items retire.
    Pool pool(1);
    std::vector<std::size_t> order;
    std::vector<unsigned> turns(3, 0);
    pool.runResumable(3, [&](std::size_t i) {
        order.push_back(i);
        return ++turns[i] < 2;
    });
    const std::vector<std::size_t> expected = {0, 1, 2, 0, 1, 2};
    EXPECT_EQ(order, expected);
}

TEST(ExpPoolResumable, PerItemTurnsAreTotallyOrdered)
{
    // The per-item total-order guarantee: a turn for item i never
    // overlaps another turn for item i, so unsynchronized per-item
    // state is safe. An in-body reentrancy flag would trip TSan and
    // this assert if two turns ever raced.
    Pool pool(8);
    const std::size_t n = 32;
    std::vector<std::atomic<bool>> busy(n);
    std::vector<unsigned> unsynchronized(n, 0); // no atomics, no locks
    pool.runResumable(n, [&](std::size_t i) {
        EXPECT_FALSE(busy[i].exchange(true))
            << "two turns of item " << i << " overlapped";
        const unsigned seen = ++unsynchronized[i];
        busy[i].store(false);
        return seen < 50;
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(unsynchronized[i], 50u) << i;
}

TEST(ExpPoolResumable, ExceptionRetiresItemAndPropagates)
{
    Pool pool(4);
    std::atomic<unsigned> completed{0};
    try {
        pool.runResumable(64, [&](std::size_t i) {
            if (i == 17)
                throw std::runtime_error("item 17 exploded");
            completed.fetch_add(1, std::memory_order_relaxed);
            return false;
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 17 exploded");
    }
    // Every other item still ran to retirement before the rethrow.
    EXPECT_EQ(completed.load(), 63u);
}

TEST(ExpPoolResumable, EmptyRangeIsANoOp)
{
    Pool pool(4);
    bool ran = false;
    pool.runResumable(0, [&](std::size_t) {
        ran = true;
        return false;
    });
    EXPECT_FALSE(ran);
}

} // namespace
