/**
 * @file
 * Crash-resume manifest unit tests plus the runner-level resume and
 * timeout contracts:
 *
 *  - recorded cells round-trip through persist()/load() and survive
 *    a torn newest file via the `.prev` rotation fallback;
 *  - a manifest written by a different code version is rejected as a
 *    typed config mismatch, never resumed from;
 *  - a resumed run serves completed cells without re-executing them
 *    and reproduces the cold JSONL artifact byte for byte;
 *  - a stuck cell exhausts its wall-clock budget, is retried the
 *    bounded number of times, reports a Timeout-typed error, and is
 *    never recorded — a later resume retries it from scratch.
 */

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hh"
#include "exp/manifest.hh"
#include "exp/runner.hh"
#include "sim/experiment.hh"

namespace {

using namespace graphene;

constexpr const char *kTag = "manifest-test-v1";

std::string
freshDir(const char *name)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

exp::CellKey
keyFor(std::uint64_t fp)
{
    return {"manifest-test", "w" + std::to_string(fp),
            "s" + std::to_string(fp), fp};
}

exp::CellResult
resultFor(std::uint64_t fp)
{
    exp::CellResult r;
    r.stats.acts = fp * 100;
    r.stats.victimRowsRefreshed = fp;
    r.stats.windows = 1.0;
    return r;
}

TEST(Manifest, RoundTripsRecordedCells)
{
    const std::string dir = freshDir("manifest_roundtrip");
    {
        exp::Manifest m(dir, kTag);
        for (std::uint64_t fp = 1; fp <= 3; ++fp)
            m.record(keyFor(fp), resultFor(fp));
        const Result<void> saved = m.persist();
        ASSERT_TRUE(saved.ok()) << saved.error().describe();
    }
    exp::Manifest reloaded(dir, kTag);
    const exp::Manifest::LoadReport report = reloaded.load();
    EXPECT_EQ(report.cells, 3u);
    EXPECT_EQ(report.source, exp::Manifest::pathFor(dir));
    EXPECT_TRUE(report.notes.empty());
    for (std::uint64_t fp = 1; fp <= 3; ++fp) {
        const auto hit = reloaded.lookup(keyFor(fp));
        ASSERT_TRUE(hit.has_value()) << "fp " << fp;
        EXPECT_EQ(*hit, resultFor(fp));
    }
    EXPECT_FALSE(reloaded.lookup(keyFor(99)).has_value());
}

TEST(Manifest, LoadOnAnEmptyDirectoryIsQuietlyEmpty)
{
    const std::string dir = freshDir("manifest_empty");
    exp::Manifest m(dir, kTag);
    const exp::Manifest::LoadReport report = m.load();
    EXPECT_EQ(report.cells, 0u);
    EXPECT_TRUE(report.source.empty());
    EXPECT_TRUE(report.notes.empty());
}

TEST(Manifest, RejectsAManifestFromADifferentCodeVersion)
{
    const std::string dir = freshDir("manifest_version");
    {
        exp::Manifest m(dir, "old-code-version");
        m.record(keyFor(1), resultFor(1));
        ASSERT_TRUE(m.persist().ok());
    }
    exp::Manifest m(dir, kTag);
    const exp::Manifest::LoadReport report = m.load();
    EXPECT_EQ(report.cells, 0u);
    EXPECT_TRUE(report.source.empty());
    ASSERT_FALSE(report.notes.empty());
    EXPECT_NE(report.notes.front().find("mismatch"),
              std::string::npos)
        << report.notes.front();
}

TEST(Manifest, FallsBackToPrevWhenTheNewestFileIsTorn)
{
    const std::string dir = freshDir("manifest_torn");
    exp::Manifest m(dir, kTag);
    m.record(keyFor(1), resultFor(1));
    ASSERT_TRUE(m.persist().ok()); // newest: {1}
    m.record(keyFor(2), resultFor(2));
    ASSERT_TRUE(m.persist().ok()); // newest: {1,2}, .prev: {1}

    // Tear the newest file mid-write (a crash between rotate and
    // rename cannot actually produce this — the write is atomic —
    // but disk corruption can).
    {
        std::ofstream torn(exp::Manifest::pathFor(dir),
                           std::ios::trunc | std::ios::binary);
        torn << "GCKP truncated";
    }

    exp::Manifest reloaded(dir, kTag);
    const exp::Manifest::LoadReport report = reloaded.load();
    EXPECT_EQ(report.cells, 1u);
    EXPECT_EQ(report.source, exp::Manifest::pathFor(dir) + ".prev");
    ASSERT_FALSE(report.notes.empty());
    EXPECT_TRUE(reloaded.lookup(keyFor(1)).has_value());
    EXPECT_FALSE(reloaded.lookup(keyFor(2)).has_value());
}

// ---- runner-level resume ------------------------------------------

/** A four-cell spec whose bodies count executions. */
exp::ExperimentSpec
countingSpec(std::atomic<unsigned> &executions)
{
    exp::ExperimentSpec spec;
    spec.name = "counting";
    for (std::uint64_t fp = 1; fp <= 4; ++fp) {
        exp::Cell cell;
        cell.key = keyFor(fp);
        cell.body = [fp, &executions]() {
            executions.fetch_add(1);
            return resultFor(fp);
        };
        spec.cells.push_back(std::move(cell));
    }
    return spec;
}

TEST(RunnerResume, ServesCompletedCellsWithoutReExecuting)
{
    const std::string ckpt = freshDir("runner_resume_ckpt");
    std::atomic<unsigned> executions{0};

    exp::RunOptions options;
    options.jobs = 2;
    options.versionTag = kTag;
    options.ckptDir = ckpt;
    {
        exp::Runner runner(options);
        const auto cold = runner.run(countingSpec(executions));
        ASSERT_EQ(cold.size(), 4u);
        EXPECT_EQ(executions.load(), 4u);
        EXPECT_EQ(runner.summary().resumed, 0u);
    }

    options.resume = true;
    exp::Runner resumed_runner(options);
    const auto resumed = resumed_runner.run(countingSpec(executions));
    ASSERT_EQ(resumed.size(), 4u);
    EXPECT_EQ(executions.load(), 4u) << "resume re-executed cells";
    EXPECT_EQ(resumed_runner.summary().resumed, 4u);
    EXPECT_EQ(resumed_runner.summary().executed, 0u);
    for (std::uint64_t fp = 1; fp <= 4; ++fp)
        EXPECT_EQ(resumed[fp - 1], resultFor(fp));
}

TEST(RunnerResume, PartialManifestRecomputesOnlyTheMissingCells)
{
    const std::string ckpt = freshDir("runner_resume_partial");
    // A "crashed" run that only completed cells 1 and 2.
    {
        exp::Manifest m(ckpt, kTag);
        m.record(keyFor(1), resultFor(1));
        m.record(keyFor(2), resultFor(2));
        ASSERT_TRUE(m.persist().ok());
    }

    std::atomic<unsigned> executions{0};
    exp::RunOptions options;
    options.jobs = 2;
    options.versionTag = kTag;
    options.ckptDir = ckpt;
    options.resume = true;
    exp::Runner runner(options);
    const auto results = runner.run(countingSpec(executions));
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(executions.load(), 2u);
    EXPECT_EQ(runner.summary().resumed, 2u);
    for (std::uint64_t fp = 1; fp <= 4; ++fp)
        EXPECT_EQ(results[fp - 1], resultFor(fp));

    // The finished run persisted a now-complete manifest.
    exp::Manifest after(ckpt, kTag);
    EXPECT_EQ(after.load().cells, 4u);
}

TEST(RunnerResume, ResumedAdversarialGridMatchesColdByteForByte)
{
    const std::string ckpt = freshDir("grid_resume_ckpt");
    const std::string out = freshDir("grid_resume_out");

    sim::ActEngineConfig base;
    base.rowsPerBank = 4096;
    base.windows = 0.05;
    const std::vector<schemes::SchemeKind> kinds = {
        schemes::SchemeKind::Graphene, schemes::SchemeKind::Para};

    exp::RunOptions options;
    options.jobs = 2;
    options.versionTag = kTag;
    options.ckptDir = ckpt;
    options.jsonlPath = out + "/cold.jsonl";
    std::vector<sim::OverheadRow> cold_rows;
    {
        exp::Runner runner(options);
        cold_rows =
            sim::runAdversarialGrid(base, kinds, 7, runner, "grid");
        EXPECT_EQ(runner.summary().resumed, 0u);
        EXPECT_GT(runner.summary().executed, 0u);
    }

    options.resume = true;
    options.jsonlPath = out + "/resumed.jsonl";
    exp::Runner resumed_runner(options);
    const auto resumed_rows =
        sim::runAdversarialGrid(base, kinds, 7, resumed_runner,
                                "grid");
    EXPECT_EQ(resumed_runner.summary().executed, 0u);
    EXPECT_EQ(resumed_runner.summary().resumed,
              resumed_runner.summary().total);
    EXPECT_EQ(slurp(out + "/resumed.jsonl"),
              slurp(out + "/cold.jsonl"));
    ASSERT_EQ(resumed_rows.size(), cold_rows.size());
}

// ---- runner-level timeouts ----------------------------------------

TEST(RunnerTimeout, StuckCellTimesOutRetriesAndIsNeverRecorded)
{
    const std::string ckpt = freshDir("runner_timeout_ckpt");
    std::atomic<unsigned> attempts{0};

    exp::ExperimentSpec spec;
    spec.name = "timeout";
    exp::Cell cell;
    cell.key = keyFor(1);
    // A cell stuck until cancelled (the cooperative-budget path); a
    // plain body must exist but is never used when a cancellable
    // variant is present.
    cell.body = []() { return resultFor(1); };
    cell.cancellableBody = [&attempts](obs::Sink *,
                                       const CancelToken &cancel) {
        attempts.fetch_add(1);
        while (!cancel.cancelled()) {
        }
        exp::CellResult r;
        r.error = "cancelled mid-run";
        return r;
    };
    spec.cells.push_back(std::move(cell));

    exp::RunOptions options;
    options.jobs = 1;
    options.versionTag = kTag;
    options.ckptDir = ckpt;
    options.cellTimeoutMs = 25.0;
    options.cellRetries = 1;
    exp::Runner runner(options);
    const auto results = runner.run(spec);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].skipped());
    EXPECT_NE(results[0].error.find("timeout"), std::string::npos)
        << results[0].error;
    EXPECT_EQ(attempts.load(), 2u) << "expected 1 try + 1 retry";
    EXPECT_EQ(runner.summary().timeouts, 1u);
    EXPECT_EQ(runner.summary().errors, 1u);

    // Timed-out cells are never recorded: a resume retries them.
    exp::Manifest after(ckpt, kTag);
    EXPECT_EQ(after.load().cells, 0u);
}

TEST(RunnerTimeout, FastCellsFinishInsideTheBudgetUntouched)
{
    std::atomic<unsigned> attempts{0};
    exp::ExperimentSpec spec;
    spec.name = "fast";
    exp::Cell cell;
    cell.key = keyFor(2);
    cell.body = []() { return resultFor(2); };
    cell.cancellableBody = [&attempts](obs::Sink *,
                                       const CancelToken &) {
        attempts.fetch_add(1);
        return resultFor(2);
    };
    spec.cells.push_back(std::move(cell));

    exp::RunOptions options;
    options.jobs = 1;
    options.cellTimeoutMs = 60000.0;
    exp::Runner runner(options);
    const auto results = runner.run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], resultFor(2));
    EXPECT_EQ(attempts.load(), 1u);
    EXPECT_EQ(runner.summary().timeouts, 0u);
}

} // namespace
