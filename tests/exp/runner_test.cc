/**
 * @file
 * Runner determinism and caching, end to end on a small Figure-8
 * shaped grid:
 *
 *  - `--jobs 1`, `--jobs 4`, and `--jobs 16` produce byte-identical
 *    JSONL artifacts and identical grids (the determinism
 *    regression satellite — also the TSan CI workload);
 *  - a warm rerun over the same cache serves 100% hits and still
 *    reproduces the cold artifact byte-for-byte;
 *  - invalid cells surface as per-cell errors without disturbing
 *    the grid shape, cold or cached.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hh"
#include "sim/experiment.hh"

namespace {

using namespace graphene;

std::string
freshDir(const char *name)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

sim::SystemConfig
smallSystem()
{
    sim::SystemConfig c;
    c.windows = 0.02; // ~1.3 ms simulated
    c.numCores = 4;
    return c;
}

std::vector<workloads::WorkloadSpec>
smallSuite()
{
    return {workloads::homogeneous("lbm", 4),
            workloads::homogeneous("mcf", 4)};
}

const std::vector<schemes::SchemeKind> kKinds = {
    schemes::SchemeKind::Graphene, schemes::SchemeKind::Para};

struct GridRun
{
    std::vector<sim::OverheadRow> rows;
    std::string jsonl;
    exp::RunSummary summary;
};

GridRun
runGrid(unsigned jobs, const std::string &dir,
        const std::string &cache_dir = "")
{
    exp::RunOptions options;
    options.jobs = jobs;
    options.jsonlPath =
        (std::filesystem::path(dir) /
         ("grid-j" + std::to_string(jobs) + ".jsonl"))
            .string();
    options.cacheDir = cache_dir;
    exp::Runner runner(options);
    GridRun run;
    run.rows = sim::runOverheadGrid(smallSystem(), smallSuite(),
                                    kKinds, runner, "grid");
    run.summary = runner.summary();
    run.jsonl = slurp(options.jsonlPath);
    return run;
}

bool
sameGrid(const std::vector<sim::OverheadRow> &a,
         const std::vector<sim::OverheadRow> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].workload != b[i].workload ||
            a[i].scheme != b[i].scheme ||
            a[i].victimRows != b[i].victimRows ||
            a[i].bitFlips != b[i].bitFlips ||
            a[i].energyOverhead != b[i].energyOverhead ||
            a[i].perfLoss != b[i].perfLoss ||
            a[i].error != b[i].error)
            return false;
    }
    return true;
}

TEST(ExpDeterminism, JobsCountNeverChangesTheArtifact)
{
    const auto dir = freshDir("exp-runner-determinism");
    const auto j1 = runGrid(1, dir);
    const auto j4 = runGrid(4, dir);
    const auto j16 = runGrid(16, dir);

    ASSERT_FALSE(j1.jsonl.empty());
    EXPECT_EQ(j1.jsonl, j4.jsonl) << "--jobs 4 diverged";
    EXPECT_EQ(j1.jsonl, j16.jsonl) << "--jobs 16 diverged";
    EXPECT_TRUE(sameGrid(j1.rows, j4.rows));
    EXPECT_TRUE(sameGrid(j1.rows, j16.rows));

    // Shape sanity: suite-major, scheme-minor, no skipped cells.
    ASSERT_EQ(j1.rows.size(), 4u);
    EXPECT_EQ(j1.rows[0].workload, "lbm");
    EXPECT_EQ(j1.rows[0].scheme, "Graphene");
    EXPECT_EQ(j1.rows[3].workload, "mcf");
    EXPECT_EQ(j1.rows[3].scheme, "PARA");
    for (const auto &row : j1.rows)
        EXPECT_FALSE(row.skipped()) << row.error;
}

TEST(ExpDeterminism, WarmCacheServesEveryCellAndSameBytes)
{
    const auto dir = freshDir("exp-runner-cache");
    const auto cache = dir + "/cache";

    const auto cold = runGrid(4, dir, cache);
    EXPECT_EQ(cold.summary.cacheHits, 0u);
    EXPECT_EQ(cold.summary.executed, cold.summary.total);

    const auto warm = runGrid(1, dir, cache);
    EXPECT_EQ(warm.summary.cacheHits, warm.summary.total)
        << "expected a 100% warm hit rate";
    EXPECT_EQ(warm.summary.executed, 0u);
    EXPECT_DOUBLE_EQ(warm.summary.cacheHitRate(), 1.0);

    EXPECT_EQ(cold.jsonl, warm.jsonl)
        << "cache state leaked into the artifact";
    EXPECT_TRUE(sameGrid(cold.rows, warm.rows));
}

TEST(ExpDeterminism, ArtifactRecordsParseBack)
{
    const auto dir = freshDir("exp-runner-parse");
    const auto run = runGrid(2, dir);

    std::istringstream lines(run.jsonl);
    std::string line;
    std::size_t records = 0;
    while (std::getline(lines, line)) {
        exp::CellKey key;
        exp::CellResult result;
        ASSERT_TRUE(exp::parseCellRecordLine(line, key, result))
            << line;
        EXPECT_EQ(exp::cellRecordLine(key, result), line);
        ++records;
    }
    // 2 baselines + 4 grid cells.
    EXPECT_EQ(records, 6u);
}

TEST(ExpRunner, InvalidCellsKeepTheGridShape)
{
    const auto dir = freshDir("exp-runner-errors");
    auto base = smallSystem();
    base.scheme.blastRadius = 0; // poisons every derived cell spec

    exp::RunOptions options;
    options.jobs = 4;
    exp::Runner runner(options);
    const auto rows = sim::runOverheadGrid(base, smallSuite(),
                                           kKinds, runner, "bad");
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &row : rows) {
        EXPECT_TRUE(row.skipped());
        EXPECT_NE(row.error.find("blast radius"), std::string::npos);
    }
    // The 2 baseline cells fail validation too: 2 + 4 grid cells.
    EXPECT_EQ(runner.summary().errors, 6u);
}

TEST(ExpRunner, ErrorCellsRoundTripThroughTheCache)
{
    const auto dir = freshDir("exp-runner-error-cache");
    auto base = smallSystem();
    base.scheme.blastRadius = 0;

    auto run = [&](unsigned jobs) {
        exp::RunOptions options;
        options.jobs = jobs;
        options.cacheDir = dir + "/cache";
        exp::Runner runner(options);
        auto rows = sim::runOverheadGrid(base, smallSuite(), kKinds,
                                         runner, "bad");
        return std::make_pair(std::move(rows), runner.summary());
    };

    const auto cold = run(4);
    const auto warm = run(1);
    EXPECT_EQ(warm.second.cacheHits, warm.second.total);
    EXPECT_TRUE(sameGrid(cold.first, warm.first));
    for (const auto &row : warm.first)
        EXPECT_NE(row.error.find("blast radius"), std::string::npos);
}

TEST(ExpRunner, SummaryAccumulatesAcrossStages)
{
    exp::Runner runner;
    const auto rows = sim::runOverheadGrid(
        smallSystem(), smallSuite(), kKinds, runner, "grid");
    ASSERT_EQ(rows.size(), 4u);
    // 2 baseline cells + 4 grid cells across the two stages.
    EXPECT_EQ(runner.summary().total, 6u);
    EXPECT_EQ(runner.summary().executed, 6u);
    EXPECT_FALSE(runner.summary().describe().empty());
}

} // namespace
