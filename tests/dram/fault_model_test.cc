/**
 * @file
 * Tests for the Row Hammer charge-disturbance fault model.
 */

#include <gtest/gtest.h>

#include "dram/fault_model.hh"

namespace graphene {
namespace dram {
namespace {

FaultConfig
smallConfig(double threshold = 100.0, unsigned radius = 1)
{
    FaultConfig c;
    c.rowHammerThreshold = threshold;
    c.mu.assign(radius, 0.0);
    for (unsigned i = 1; i <= radius; ++i)
        c.mu[i - 1] = 1.0 / (static_cast<double>(i) * i);
    return c;
}

TEST(FaultModel, AdjacentDisturbanceAccumulates)
{
    FaultModel f(smallConfig(), 1000);
    for (std::uint64_t i = 0; i < 10; ++i)
        f.onActivate(Cycle{i}, Row{500});
    EXPECT_DOUBLE_EQ(f.disturbance(Row{499}), 10.0);
    EXPECT_DOUBLE_EQ(f.disturbance(Row{501}), 10.0);
    EXPECT_DOUBLE_EQ(f.disturbance(Row{502}), 0.0);
}

TEST(FaultModel, FlipAtThreshold)
{
    FaultModel f(smallConfig(100.0), 1000);
    for (std::uint64_t i = 0; i < 99; ++i)
        f.onActivate(Cycle{i}, Row{500});
    EXPECT_TRUE(f.flips().empty());
    f.onActivate(Cycle{99}, Row{500});
    ASSERT_EQ(f.flips().size(), 2u); // both neighbours flip
    EXPECT_EQ(f.flips()[0].victimRow, Row{499});
    EXPECT_EQ(f.flips()[1].victimRow, Row{501});
    EXPECT_EQ(f.flips()[0].cycle, Cycle{99});
}

TEST(FaultModel, RefreshResetsDisturbance)
{
    FaultModel f(smallConfig(100.0), 1000);
    for (std::uint64_t i = 0; i < 60; ++i)
        f.onActivate(Cycle{i}, Row{500});
    f.onRowRefresh(Row{499});
    for (std::uint64_t i = 0; i < 60; ++i)
        f.onActivate(Cycle{100 + i}, Row{500});
    // 499 was refreshed at 60 and saw only 60 more: no flip there.
    // 501 accumulated 120 >= 100: flipped.
    ASSERT_EQ(f.flips().size(), 1u);
    EXPECT_EQ(f.flips()[0].victimRow, Row{501});
}

TEST(FaultModel, DoubleSidedHalvesTheBudget)
{
    FaultModel f(smallConfig(100.0), 1000);
    // Alternating aggressors around row 500: each deposits 1 per ACT.
    for (std::uint64_t i = 0; i < 50; ++i) {
        f.onActivate(Cycle{2 * i}, Row{499});
        f.onActivate(Cycle{2 * i + 1}, Row{501});
    }
    // Row 500 received 100 units from 50 ACTs per side.
    bool flipped_500 = false;
    for (const auto &flip : f.flips())
        flipped_500 |= flip.victimRow == Row{500};
    EXPECT_TRUE(flipped_500);
}

TEST(FaultModel, NonAdjacentWeights)
{
    FaultModel f(smallConfig(100.0, 3), 1000);
    f.onActivate(Cycle{0}, Row{500});
    EXPECT_DOUBLE_EQ(f.disturbance(Row{499}), 1.0);
    EXPECT_DOUBLE_EQ(f.disturbance(Row{498}), 0.25);
    EXPECT_NEAR(f.disturbance(Row{497}), 1.0 / 9.0, 1e-12);
    EXPECT_DOUBLE_EQ(f.disturbance(Row{496}), 0.0);
}

TEST(FaultModel, EdgeRowsClip)
{
    FaultModel f(smallConfig(100.0, 2), 1000);
    f.onActivate(Cycle{0}, Row{0});
    EXPECT_DOUBLE_EQ(f.disturbance(Row{1}), 1.0);
    EXPECT_DOUBLE_EQ(f.disturbance(Row{2}), 0.25);
    f.onActivate(Cycle{1}, Row{999});
    EXPECT_DOUBLE_EQ(f.disturbance(Row{998}), 1.0);
}

TEST(FaultModel, RemapPermutationIsABijection)
{
    FaultConfig c = smallConfig();
    c.remap = true;
    FaultModel f(c, 1024);
    std::vector<bool> seen(1024, false);
    for (Row r{}; r.value() < 1024; ++r) {
        const auto n = f.physicalNeighbors(r, 1);
        for (Row v : n) {
            ASSERT_LT(v.value(), 1024u);
            // Every row has at most two distance-1 physical
            // neighbours; collect coverage via left neighbours.
        }
        (void)seen;
    }
    // Disturbance still lands somewhere and nowhere "logical".
    f.onActivate(Cycle{0}, Row{500});
    double total = 0.0;
    int disturbed = 0;
    for (Row r{}; r.value() < 1024; ++r) {
        total += f.disturbance(r);
        disturbed += f.disturbance(r) > 0;
    }
    EXPECT_EQ(disturbed, 2);
    EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(FaultModel, RemapBreaksLogicalAdjacency)
{
    FaultConfig c = smallConfig();
    c.remap = true;
    FaultModel f(c, 65536);
    // With a random permutation over 64K rows, the chance that a
    // logical neighbour is also a physical neighbour is negligible.
    f.onActivate(Cycle{0}, Row{500});
    EXPECT_DOUBLE_EQ(f.disturbance(Row{499}), 0.0);
    EXPECT_DOUBLE_EQ(f.disturbance(Row{501}), 0.0);
}

TEST(FaultModel, PhysicalNeighborsMatchDepositTargets)
{
    FaultConfig c = smallConfig(100.0, 2);
    c.remap = true;
    FaultModel f(c, 4096);
    const auto victims = f.physicalNeighbors(Row{1000}, 2);
    ASSERT_EQ(victims.size(), 4u);
    f.onActivate(Cycle{0}, Row{1000});
    for (Row v : victims)
        EXPECT_GT(f.disturbance(v), 0.0) << "victim " << v;
}

TEST(FaultModel, RemapIsDeterministicPerSeed)
{
    FaultConfig c = smallConfig();
    c.remap = true;
    FaultModel a(c, 4096), b(c, 4096);
    EXPECT_EQ(a.physicalNeighbors(Row{7}, 1), b.physicalNeighbors(Row{7}, 1));
    c.remapSeed = 999;
    FaultModel d(c, 4096);
    EXPECT_NE(a.physicalNeighbors(Row{7}, 1), d.physicalNeighbors(Row{7}, 1));
}

TEST(FaultModel, IdentityNeighborsWithoutRemap)
{
    FaultModel f(smallConfig(100.0, 2), 4096);
    const auto n = f.physicalNeighbors(Row{1000}, 2);
    EXPECT_EQ(n, (std::vector<Row>{Row{999}, Row{1001}, Row{998},
                                   Row{1002}}));
}

TEST(FaultModel, OneFlipRecordedPerExcursion)
{
    FaultModel f(smallConfig(10.0), 1000);
    for (std::uint64_t i = 0; i < 50; ++i)
        f.onActivate(Cycle{i}, Row{500});
    // Crossing once latches; no duplicate flip until refreshed.
    EXPECT_EQ(f.flips().size(), 2u);
    f.onRowRefresh(Row{499});
    for (std::uint64_t i = 0; i < 10; ++i)
        f.onActivate(Cycle{100 + i}, Row{500});
    EXPECT_EQ(f.flips().size(), 3u);
}

} // namespace
} // namespace dram
} // namespace graphene
