/**
 * @file
 * Tests for the Row Hammer charge-disturbance fault model.
 */

#include <gtest/gtest.h>

#include "dram/fault_model.hh"

namespace graphene {
namespace dram {
namespace {

FaultConfig
smallConfig(double threshold = 100.0, unsigned radius = 1)
{
    FaultConfig c;
    c.rowHammerThreshold = threshold;
    c.mu.assign(radius, 0.0);
    for (unsigned i = 1; i <= radius; ++i)
        c.mu[i - 1] = 1.0 / (static_cast<double>(i) * i);
    return c;
}

TEST(FaultModel, AdjacentDisturbanceAccumulates)
{
    FaultModel f(smallConfig(), 1000);
    for (int i = 0; i < 10; ++i)
        f.onActivate(i, 500);
    EXPECT_DOUBLE_EQ(f.disturbance(499), 10.0);
    EXPECT_DOUBLE_EQ(f.disturbance(501), 10.0);
    EXPECT_DOUBLE_EQ(f.disturbance(502), 0.0);
}

TEST(FaultModel, FlipAtThreshold)
{
    FaultModel f(smallConfig(100.0), 1000);
    for (int i = 0; i < 99; ++i)
        f.onActivate(i, 500);
    EXPECT_TRUE(f.flips().empty());
    f.onActivate(99, 500);
    ASSERT_EQ(f.flips().size(), 2u); // both neighbours flip
    EXPECT_EQ(f.flips()[0].victimRow, 499u);
    EXPECT_EQ(f.flips()[1].victimRow, 501u);
    EXPECT_EQ(f.flips()[0].cycle, 99u);
}

TEST(FaultModel, RefreshResetsDisturbance)
{
    FaultModel f(smallConfig(100.0), 1000);
    for (int i = 0; i < 60; ++i)
        f.onActivate(i, 500);
    f.onRowRefresh(499);
    for (int i = 0; i < 60; ++i)
        f.onActivate(100 + i, 500);
    // 499 was refreshed at 60 and saw only 60 more: no flip there.
    // 501 accumulated 120 >= 100: flipped.
    ASSERT_EQ(f.flips().size(), 1u);
    EXPECT_EQ(f.flips()[0].victimRow, 501u);
}

TEST(FaultModel, DoubleSidedHalvesTheBudget)
{
    FaultModel f(smallConfig(100.0), 1000);
    // Alternating aggressors around row 500: each deposits 1 per ACT.
    for (int i = 0; i < 50; ++i) {
        f.onActivate(2 * i, 499);
        f.onActivate(2 * i + 1, 501);
    }
    // Row 500 received 100 units from 50 ACTs per side.
    bool flipped_500 = false;
    for (const auto &flip : f.flips())
        flipped_500 |= flip.victimRow == 500;
    EXPECT_TRUE(flipped_500);
}

TEST(FaultModel, NonAdjacentWeights)
{
    FaultModel f(smallConfig(100.0, 3), 1000);
    f.onActivate(0, 500);
    EXPECT_DOUBLE_EQ(f.disturbance(499), 1.0);
    EXPECT_DOUBLE_EQ(f.disturbance(498), 0.25);
    EXPECT_NEAR(f.disturbance(497), 1.0 / 9.0, 1e-12);
    EXPECT_DOUBLE_EQ(f.disturbance(496), 0.0);
}

TEST(FaultModel, EdgeRowsClip)
{
    FaultModel f(smallConfig(100.0, 2), 1000);
    f.onActivate(0, 0);
    EXPECT_DOUBLE_EQ(f.disturbance(1), 1.0);
    EXPECT_DOUBLE_EQ(f.disturbance(2), 0.25);
    f.onActivate(1, 999);
    EXPECT_DOUBLE_EQ(f.disturbance(998), 1.0);
}

TEST(FaultModel, RemapPermutationIsABijection)
{
    FaultConfig c = smallConfig();
    c.remap = true;
    FaultModel f(c, 1024);
    std::vector<bool> seen(1024, false);
    for (Row r = 0; r < 1024; ++r) {
        const auto n = f.physicalNeighbors(r, 1);
        for (Row v : n) {
            ASSERT_LT(v, 1024u);
            // Every row has at most two distance-1 physical
            // neighbours; collect coverage via left neighbours.
        }
        (void)seen;
    }
    // Disturbance still lands somewhere and nowhere "logical".
    f.onActivate(0, 500);
    double total = 0.0;
    int disturbed = 0;
    for (Row r = 0; r < 1024; ++r) {
        total += f.disturbance(r);
        disturbed += f.disturbance(r) > 0;
    }
    EXPECT_EQ(disturbed, 2);
    EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(FaultModel, RemapBreaksLogicalAdjacency)
{
    FaultConfig c = smallConfig();
    c.remap = true;
    FaultModel f(c, 65536);
    // With a random permutation over 64K rows, the chance that a
    // logical neighbour is also a physical neighbour is negligible.
    f.onActivate(0, 500);
    EXPECT_DOUBLE_EQ(f.disturbance(499), 0.0);
    EXPECT_DOUBLE_EQ(f.disturbance(501), 0.0);
}

TEST(FaultModel, PhysicalNeighborsMatchDepositTargets)
{
    FaultConfig c = smallConfig(100.0, 2);
    c.remap = true;
    FaultModel f(c, 4096);
    const auto victims = f.physicalNeighbors(1000, 2);
    ASSERT_EQ(victims.size(), 4u);
    f.onActivate(0, 1000);
    for (Row v : victims)
        EXPECT_GT(f.disturbance(v), 0.0) << "victim " << v;
}

TEST(FaultModel, RemapIsDeterministicPerSeed)
{
    FaultConfig c = smallConfig();
    c.remap = true;
    FaultModel a(c, 4096), b(c, 4096);
    EXPECT_EQ(a.physicalNeighbors(7, 1), b.physicalNeighbors(7, 1));
    c.remapSeed = 999;
    FaultModel d(c, 4096);
    EXPECT_NE(a.physicalNeighbors(7, 1), d.physicalNeighbors(7, 1));
}

TEST(FaultModel, IdentityNeighborsWithoutRemap)
{
    FaultModel f(smallConfig(100.0, 2), 4096);
    const auto n = f.physicalNeighbors(1000, 2);
    EXPECT_EQ(n, (std::vector<Row>{999, 1001, 998, 1002}));
}

TEST(FaultModel, OneFlipRecordedPerExcursion)
{
    FaultModel f(smallConfig(10.0), 1000);
    for (int i = 0; i < 50; ++i)
        f.onActivate(i, 500);
    // Crossing once latches; no duplicate flip until refreshed.
    EXPECT_EQ(f.flips().size(), 2u);
    f.onRowRefresh(499);
    for (int i = 0; i < 10; ++i)
        f.onActivate(100 + i, 500);
    EXPECT_EQ(f.flips().size(), 3u);
}

} // namespace
} // namespace dram
} // namespace graphene
