/**
 * @file
 * Tests for the per-bank DRAM state machine.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/command.hh"

namespace graphene {
namespace dram {
namespace {

class BankTest : public ::testing::Test
{
  protected:
    TimingParams timing = TimingParams::ddr4_2400();
    Bank bank{timing, 65536};
};

TEST_F(BankTest, StartsClosed)
{
    EXPECT_FALSE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), Row::invalid());
    EXPECT_EQ(bank.earliestAct(Cycle{0}), Cycle{0});
}

TEST_F(BankTest, ActOpensRow)
{
    bank.issueAct(Cycle{0}, Row{42});
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), Row{42});
    EXPECT_EQ(bank.actCount().value(), 1u);
}

TEST_F(BankTest, ReadWaitsForRcd)
{
    bank.issueAct(Cycle{0}, Row{42});
    EXPECT_EQ(bank.earliestReadWrite(Cycle{0}), timing.cRCD());
    const Cycle done = bank.issueReadWrite(timing.cRCD());
    EXPECT_EQ(done, timing.cRCD() + timing.cCL() + timing.cBL());
}

TEST_F(BankTest, PrechargeWaitsForRas)
{
    bank.issueAct(Cycle{0}, Row{42});
    EXPECT_EQ(bank.earliestPrecharge(Cycle{0}), timing.cRAS());
    bank.issuePrecharge(timing.cRAS());
    EXPECT_FALSE(bank.isOpen());
}

TEST_F(BankTest, ActToActRespectsTrc)
{
    bank.issueAct(Cycle{0}, Row{1});
    bank.issuePrecharge(bank.earliestPrecharge(Cycle{0}));
    // The next ACT must wait for both tRAS + tRP and tRC; with DDR4
    // numbers tRC (54 cyc) > tRAS + tRP (39 + 16 = 55?) — check via
    // the bank's own bound rather than assuming.
    const Cycle next = bank.earliestAct(Cycle{0});
    EXPECT_GE(next, timing.cRC());
    bank.issueAct(next, Row{2});
    EXPECT_EQ(bank.openRow(), Row{2});
}

TEST_F(BankTest, MaxActRateIsBoundedByTrc)
{
    // Issue 1000 back-to-back ACT/PRE pairs as fast as legal; the
    // elapsed time must be >= 1000 * tRC (the bound W relies on).
    Cycle now{};
    for (int i = 0; i < 1000; ++i) {
        now = bank.earliestAct(now);
        bank.issueAct(now, Row{static_cast<Row::rep>(i)});
        bank.issuePrecharge(bank.earliestPrecharge(now));
    }
    EXPECT_GE(now, timing.cRC() * 999);
}

TEST_F(BankTest, EarlyActPanics)
{
    bank.issueAct(Cycle{0}, Row{1});
    bank.issuePrecharge(bank.earliestPrecharge(Cycle{0}));
    EXPECT_DEATH(bank.issueAct(Cycle{1}, Row{2}), "ACT");
}

TEST_F(BankTest, ActToOpenBankPanics)
{
    bank.issueAct(Cycle{0}, Row{1});
    EXPECT_DEATH(bank.issueAct(timing.cRC(), Row{2}), "open");
}

TEST_F(BankTest, OutOfRangeRowPanics)
{
    EXPECT_DEATH(bank.issueAct(Cycle{0}, Row{70000}), "out-of-range");
}

TEST_F(BankTest, ReadWithoutOpenRowPanics)
{
    EXPECT_DEATH(bank.issueReadWrite(Cycle{100}), "no open row");
}

TEST_F(BankTest, BlockDelaysEverything)
{
    bank.issueAct(Cycle{0}, Row{1});
    bank.block(Cycle{10}, Cycle{5000});
    EXPECT_FALSE(bank.isOpen());
    EXPECT_GE(bank.earliestAct(Cycle{0}), Cycle{5000});
    EXPECT_GE(bank.earliestReadWrite(Cycle{0}), Cycle{5000});
}

TEST_F(BankTest, ConsecutiveReadsPipelinePerBurst)
{
    bank.issueAct(Cycle{0}, Row{1});
    Cycle t = bank.earliestReadWrite(Cycle{0});
    bank.issueReadWrite(t);
    const Cycle t2 = bank.earliestReadWrite(t);
    EXPECT_EQ(t2, t + timing.cBL());
}

TEST(CommandNames, AllNamed)
{
    EXPECT_STREQ(commandName(Command::ACT), "ACT");
    EXPECT_STREQ(commandName(Command::PRE), "PRE");
    EXPECT_STREQ(commandName(Command::RD), "RD");
    EXPECT_STREQ(commandName(Command::WR), "WR");
    EXPECT_STREQ(commandName(Command::REF), "REF");
    EXPECT_STREQ(commandName(Command::NRR), "NRR");
}

} // namespace
} // namespace dram
} // namespace graphene
