/**
 * @file
 * Property test: for every mapping policy, encode and decode are
 * exact inverses over the full physical address space — random
 * samples plus the boundary patterns that historically break
 * bit-slicing mappers (address zero, capacity-1, single-bit walks,
 * row/line boundaries).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "dram/address.hh"

namespace graphene {
namespace dram {
namespace {

Geometry
smallGeometry()
{
    Geometry g;
    g.channels = 4;
    g.ranksPerChannel = 1;
    g.banksPerRank = 16;
    g.rowsPerBank = 65536;
    g.bytesPerRow = 8192;
    return g;
}

std::vector<Addr>
boundaryAddrs(const Geometry &g)
{
    const std::uint64_t capacity = g.capacityBytes();
    std::vector<Addr> addrs = {Addr{0}, Addr{1}, Addr{63}, Addr{64},
                               Addr{capacity - 1}, Addr{capacity / 2}};
    // Walk a single set bit across the full address width.
    for (unsigned bit = 0; (1ULL << bit) < capacity; ++bit)
        addrs.push_back(Addr{1ULL << bit});
    // Row-size and line-size boundary straddles.
    for (std::uint64_t base : {g.bytesPerRow, 2 * g.bytesPerRow}) {
        if (base >= capacity)
            continue;
        addrs.push_back(Addr{base - 1});
        addrs.push_back(Addr{base});
        addrs.push_back(Addr{base + 64});
    }
    return addrs;
}

TEST(AddressProperty, EncodeDecodeRoundTripsBoundaries)
{
    const Geometry g = smallGeometry();
    for (MappingPolicy policy : allMappingPolicies()) {
        const AddressMapper m(g, policy);
        for (Addr a : boundaryAddrs(g)) {
            const DecodedAddr d = m.decode(a);
            EXPECT_EQ(m.encode(d), a)
                << mappingPolicyName(policy) << " addr "
                << a.value();
        }
    }
}

TEST(AddressProperty, EncodeDecodeRoundTripsRandomAddrs)
{
    const Geometry g = smallGeometry();
    const std::uint64_t capacity = g.capacityBytes();
    for (MappingPolicy policy : allMappingPolicies()) {
        const AddressMapper m(g, policy);
        Rng rng(2026);
        for (int i = 0; i < 20000; ++i) {
            const Addr a{rng.next64() % capacity};
            const DecodedAddr d = m.decode(a);
            ASSERT_EQ(m.encode(d), a)
                << mappingPolicyName(policy) << " addr "
                << a.value();
        }
    }
}

TEST(AddressProperty, DecodedFieldsStayWithinGeometry)
{
    const Geometry g = smallGeometry();
    for (MappingPolicy policy : allMappingPolicies()) {
        const AddressMapper m(g, policy);
        Rng rng(7);
        for (int i = 0; i < 5000; ++i) {
            const Addr a{rng.next64() % g.capacityBytes()};
            const DecodedAddr d = m.decode(a);
            ASSERT_LT(d.channel, g.channels);
            ASSERT_LT(d.rank, g.ranksPerChannel);
            ASSERT_LT(d.bank, g.banksPerRank);
            ASSERT_LT(d.row.value(), g.rowsPerBank);
            ASSERT_LT(d.column, g.bytesPerRow);
        }
    }
}

TEST(AddressProperty, DecodeEncodeRoundTripsDecodedForm)
{
    // The other direction: a well-formed decoded address survives
    // encode -> decode.
    const Geometry g = smallGeometry();
    for (MappingPolicy policy : allMappingPolicies()) {
        const AddressMapper m(g, policy);
        Rng rng(99);
        for (int i = 0; i < 5000; ++i) {
            DecodedAddr d{};
            d.channel = static_cast<unsigned>(rng.nextRange(g.channels));
            d.rank = static_cast<unsigned>(
                rng.nextRange(g.ranksPerChannel));
            d.bank = static_cast<unsigned>(rng.nextRange(g.banksPerRank));
            d.row = Row{static_cast<Row::rep>(
                rng.nextRange(g.rowsPerBank))};
            d.column = rng.nextRange(g.bytesPerRow);
            const DecodedAddr back = m.decode(m.encode(d));
            ASSERT_EQ(back.channel, d.channel);
            ASSERT_EQ(back.rank, d.rank);
            ASSERT_EQ(back.bank, d.bank);
            ASSERT_EQ(back.row, d.row);
            ASSERT_EQ(back.column, d.column);
        }
    }
}

} // namespace
} // namespace dram
} // namespace graphene
