/**
 * @file
 * Tests for the DDR4 timing parameters (paper Table I) and the
 * maximum-ACT-rate derivation behind W (Section III-B).
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"

namespace graphene {
namespace dram {
namespace {

TEST(Timing, TableIValues)
{
    const TimingParams t = TimingParams::ddr4_2400();
    EXPECT_DOUBLE_EQ(t.tREFI.value(), 7800.0);
    EXPECT_DOUBLE_EQ(t.tRFC.value(), 350.0);
    EXPECT_DOUBLE_EQ(t.tRC.value(), 45.0);
    EXPECT_DOUBLE_EQ(t.tREFW.value(), 64.0e6);
    EXPECT_NEAR(t.tRCD.value(), 13.3, 1e-9);
}

TEST(Timing, CycleConversionRoundsUp)
{
    TimingParams t;
    t.tCK = Nanoseconds{1.0};
    EXPECT_EQ(t.toCycles(Nanoseconds{10.0}), Cycle{10});
    EXPECT_EQ(t.toCycles(Nanoseconds{10.2}), Cycle{11});
    EXPECT_EQ(t.toCycles(Nanoseconds{0.1}), Cycle{1});
}

TEST(Timing, MaxActsMatchesPaperW)
{
    // W = tREFW (1 - tRFC/tREFI) / tRC ~ 1360K (Table II).
    const TimingParams t = TimingParams::ddr4_2400();
    const std::uint64_t w = t.maxActsInWindow(1).value();
    EXPECT_NEAR(static_cast<double>(w), 1360000.0, 5000.0);
    EXPECT_EQ(w, 1358404u);
}

TEST(Timing, MaxActsScalesWithK)
{
    const TimingParams t = TimingParams::ddr4_2400();
    const std::uint64_t w1 = t.maxActsInWindow(1).value();
    for (unsigned k = 2; k <= 10; ++k) {
        const std::uint64_t wk = t.maxActsInWindow(k).value();
        EXPECT_NEAR(static_cast<double>(wk),
                    static_cast<double>(w1) / k, 1.0)
            << "k=" << k;
    }
}

TEST(Timing, RefreshConsumesBandwidthFraction)
{
    const TimingParams t = TimingParams::ddr4_2400();
    // tRFC/tREFI ~ 4.5% of time is spent refreshing.
    EXPECT_NEAR(t.tRFC / t.tREFI, 0.0449, 0.0005);
}

TEST(Timing, RefreshesPerWindow)
{
    const TimingParams t = TimingParams::ddr4_2400();
    // 64 ms / 7.8 us ~ 8205 REF commands per tREFW.
    EXPECT_EQ(static_cast<std::uint64_t>(t.tREFW / t.tREFI), 8205u);
}

} // namespace
} // namespace dram
} // namespace graphene
