/**
 * @file
 * Tests for the rank: auto-refresh rotation, NRR expansion, and
 * refresh listeners.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/rank.hh"

namespace graphene {
namespace dram {
namespace {

FaultConfig
defaultFault()
{
    FaultConfig c;
    c.rowHammerThreshold = 1e12; // physics disabled for these tests
    return c;
}

TEST(Rank, RefreshRotationCoversEveryRowWithinWindow)
{
    TimingParams t = TimingParams::ddr4_2400();
    const std::uint64_t rows = 65536;
    Rank rank(t, 2, rows, defaultFault());

    std::set<Row> refreshed;
    rank.addRefreshListener([&refreshed](unsigned bank, Row row) {
        if (bank == 0)
            refreshed.insert(row);
    });

    const std::uint64_t refs_per_window =
        static_cast<std::uint64_t>(t.tREFW / t.tREFI);
    for (std::uint64_t i = 0; i < refs_per_window; ++i)
        rank.issueRefresh(rank.nextRefreshDue());

    EXPECT_EQ(refreshed.size(), rows);
    EXPECT_EQ(rank.refreshCount(), refs_per_window);
}

TEST(Rank, RefreshBlocksBanksForTrfc)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 2, 1024, defaultFault());
    const Cycle due = rank.nextRefreshDue();
    rank.issueRefresh(due);
    EXPECT_GE(rank.bank(0).earliestAct(due), due + t.cRFC());
    EXPECT_GE(rank.bank(1).earliestAct(due), due + t.cRFC());
}

TEST(Rank, EarlyRefreshPanics)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    EXPECT_DEATH(rank.issueRefresh(Cycle{0}), "REF");
}

TEST(Rank, NrrRefreshesVictimsAtDistance)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    std::set<Row> seen;
    rank.addRefreshListener(
        [&seen](unsigned, Row row) { seen.insert(row); });

    const unsigned count = rank.issueNrr(Cycle{100}, 0, Row{500}, 2);
    EXPECT_EQ(count, 4u);
    EXPECT_EQ(seen,
              (std::set<Row>{Row{498}, Row{499}, Row{501},
                             Row{502}}));
    EXPECT_EQ(rank.nrrRowCount(), 4u);
}

TEST(Rank, NrrClipsAtBankEdge)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    EXPECT_EQ(rank.issueNrr(Cycle{0}, 0, Row{0}, 2), 2u);    // only +1, +2
    EXPECT_EQ(rank.issueNrr(Cycle{0}, 0, Row{1023}, 1), 1u); // only -1
}

TEST(Rank, NrrBlocksBankPerRow)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    rank.issueNrr(Cycle{1000}, 0, Row{500}, 1);
    EXPECT_GE(rank.bank(0).earliestAct(Cycle{1000}),
              Cycle{1000} + t.cRC() * 2);
}

TEST(Rank, VictimRowListRefresh)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    std::set<Row> seen;
    rank.addRefreshListener(
        [&seen](unsigned, Row row) { seen.insert(row); });
    rank.refreshVictimRows(Cycle{0}, 0, {Row{10}, Row{20}, Row{30}});
    EXPECT_EQ(seen, (std::set<Row>{Row{10}, Row{20}, Row{30}}));
    EXPECT_EQ(rank.nrrRowCount(), 3u);
    EXPECT_GE(rank.bank(0).earliestAct(Cycle{0}), t.cRC() * 3);
}

TEST(Rank, RefreshClearsFaultDisturbance)
{
    TimingParams t = TimingParams::ddr4_2400();
    FaultConfig fc;
    fc.rowHammerThreshold = 1000.0;
    Rank rank(t, 1, 1024, fc);
    for (std::uint64_t i = 0; i < 100; ++i)
        rank.notifyActivate(Cycle{i}, 0, Row{500});
    EXPECT_DOUBLE_EQ(rank.faultModel(0).disturbance(Row{499}), 100.0);
    rank.issueNrr(Cycle{200}, 0, Row{500}, 1);
    EXPECT_DOUBLE_EQ(rank.faultModel(0).disturbance(Row{499}), 0.0);
    EXPECT_DOUBLE_EQ(rank.faultModel(0).disturbance(Row{501}), 0.0);
}

TEST(Rank, FawAllowsFourFastActs)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 8, 1024, defaultFault());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rank.earliestFawAct(Cycle{static_cast<std::uint64_t>(i)}),
                  Cycle{static_cast<std::uint64_t>(i)});
        rank.recordFawAct(Cycle{static_cast<std::uint64_t>(i)});
    }
    // The fifth ACT waits until the first leaves the window.
    EXPECT_EQ(rank.earliestFawAct(Cycle{4}), t.cFAW());
}

TEST(Rank, FawWindowSlides)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 8, 1024, defaultFault());
    const Cycle faw = t.cFAW();
    rank.recordFawAct(Cycle{0});
    rank.recordFawAct(Cycle{10});
    rank.recordFawAct(Cycle{20});
    rank.recordFawAct(Cycle{30});
    EXPECT_EQ(rank.earliestFawAct(Cycle{5}), faw);
    rank.recordFawAct(faw);
    // Now the oldest is the ACT at 10.
    EXPECT_EQ(rank.earliestFawAct(faw), Cycle{10} + faw);
}

TEST(Rank, FawNeverBindsBeforeFourActs)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 8, 1024, defaultFault());
    rank.recordFawAct(Cycle{100});
    rank.recordFawAct(Cycle{100});
    rank.recordFawAct(Cycle{100});
    EXPECT_EQ(rank.earliestFawAct(Cycle{100}), Cycle{100});
}

TEST(Rank, RowsPerRefreshCoversBank)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 65536, defaultFault());
    const std::uint64_t refs =
        static_cast<std::uint64_t>(t.tREFW / t.tREFI);
    EXPECT_GE(rank.rowsPerRefresh() * refs, 65536u);
}

} // namespace
} // namespace dram
} // namespace graphene
