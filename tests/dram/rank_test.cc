/**
 * @file
 * Tests for the rank: auto-refresh rotation, NRR expansion, and
 * refresh listeners.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/rank.hh"

namespace graphene {
namespace dram {
namespace {

FaultConfig
defaultFault()
{
    FaultConfig c;
    c.rowHammerThreshold = 1e12; // physics disabled for these tests
    return c;
}

TEST(Rank, RefreshRotationCoversEveryRowWithinWindow)
{
    TimingParams t = TimingParams::ddr4_2400();
    const std::uint64_t rows = 65536;
    Rank rank(t, 2, rows, defaultFault());

    std::set<Row> refreshed;
    rank.addRefreshListener([&refreshed](unsigned bank, Row row) {
        if (bank == 0)
            refreshed.insert(row);
    });

    const std::uint64_t refs_per_window =
        static_cast<std::uint64_t>(t.tREFW / t.tREFI);
    for (std::uint64_t i = 0; i < refs_per_window; ++i)
        rank.issueRefresh(rank.nextRefreshDue());

    EXPECT_EQ(refreshed.size(), rows);
    EXPECT_EQ(rank.refreshCount(), refs_per_window);
}

TEST(Rank, RefreshBlocksBanksForTrfc)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 2, 1024, defaultFault());
    const Cycle due = rank.nextRefreshDue();
    rank.issueRefresh(due);
    EXPECT_GE(rank.bank(0).earliestAct(due), due + t.cRFC());
    EXPECT_GE(rank.bank(1).earliestAct(due), due + t.cRFC());
}

TEST(Rank, EarlyRefreshPanics)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    EXPECT_DEATH(rank.issueRefresh(0), "REF");
}

TEST(Rank, NrrRefreshesVictimsAtDistance)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    std::set<Row> seen;
    rank.addRefreshListener(
        [&seen](unsigned, Row row) { seen.insert(row); });

    const unsigned count = rank.issueNrr(100, 0, 500, 2);
    EXPECT_EQ(count, 4u);
    EXPECT_EQ(seen, (std::set<Row>{498, 499, 501, 502}));
    EXPECT_EQ(rank.nrrRowCount(), 4u);
}

TEST(Rank, NrrClipsAtBankEdge)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    EXPECT_EQ(rank.issueNrr(0, 0, 0, 2), 2u);    // only +1, +2
    EXPECT_EQ(rank.issueNrr(0, 0, 1023, 1), 1u); // only -1
}

TEST(Rank, NrrBlocksBankPerRow)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    rank.issueNrr(1000, 0, 500, 1);
    EXPECT_GE(rank.bank(0).earliestAct(1000), 1000 + 2 * t.cRC());
}

TEST(Rank, VictimRowListRefresh)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 1024, defaultFault());
    std::set<Row> seen;
    rank.addRefreshListener(
        [&seen](unsigned, Row row) { seen.insert(row); });
    rank.refreshVictimRows(0, 0, {10, 20, 30});
    EXPECT_EQ(seen, (std::set<Row>{10, 20, 30}));
    EXPECT_EQ(rank.nrrRowCount(), 3u);
    EXPECT_GE(rank.bank(0).earliestAct(0), 3 * t.cRC());
}

TEST(Rank, RefreshClearsFaultDisturbance)
{
    TimingParams t = TimingParams::ddr4_2400();
    FaultConfig fc;
    fc.rowHammerThreshold = 1000.0;
    Rank rank(t, 1, 1024, fc);
    for (int i = 0; i < 100; ++i)
        rank.notifyActivate(i, 0, 500);
    EXPECT_DOUBLE_EQ(rank.faultModel(0).disturbance(499), 100.0);
    rank.issueNrr(200, 0, 500, 1);
    EXPECT_DOUBLE_EQ(rank.faultModel(0).disturbance(499), 0.0);
    EXPECT_DOUBLE_EQ(rank.faultModel(0).disturbance(501), 0.0);
}

TEST(Rank, FawAllowsFourFastActs)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 8, 1024, defaultFault());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rank.earliestFawAct(static_cast<Cycle>(i)),
                  static_cast<Cycle>(i));
        rank.recordFawAct(static_cast<Cycle>(i));
    }
    // The fifth ACT waits until the first leaves the window.
    EXPECT_EQ(rank.earliestFawAct(4), t.cFAW());
}

TEST(Rank, FawWindowSlides)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 8, 1024, defaultFault());
    const Cycle faw = t.cFAW();
    rank.recordFawAct(0);
    rank.recordFawAct(10);
    rank.recordFawAct(20);
    rank.recordFawAct(30);
    EXPECT_EQ(rank.earliestFawAct(5), faw);
    rank.recordFawAct(faw);
    // Now the oldest is the ACT at 10.
    EXPECT_EQ(rank.earliestFawAct(faw), 10 + faw);
}

TEST(Rank, FawNeverBindsBeforeFourActs)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 8, 1024, defaultFault());
    rank.recordFawAct(100);
    rank.recordFawAct(100);
    rank.recordFawAct(100);
    EXPECT_EQ(rank.earliestFawAct(100), 100u);
}

TEST(Rank, RowsPerRefreshCoversBank)
{
    TimingParams t = TimingParams::ddr4_2400();
    Rank rank(t, 1, 65536, defaultFault());
    const std::uint64_t refs =
        static_cast<std::uint64_t>(t.tREFW / t.tREFI);
    EXPECT_GE(rank.rowsPerRefresh() * refs, 65536u);
}

} // namespace
} // namespace dram
} // namespace graphene
