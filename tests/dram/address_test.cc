/**
 * @file
 * Tests for DRAM geometry and address mapping.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "dram/address.hh"

namespace graphene {
namespace dram {
namespace {

TEST(Geometry, TableIIICapacity)
{
    Geometry g;
    EXPECT_EQ(g.totalBanks(), 64u);
    // 4 ch x 16 banks x 64K rows x 8KB = 32 GB... the paper's 128 GB
    // system uses 2 ranks of x4 devices; our default geometry models
    // the per-bank structure that matters for protection.
    EXPECT_EQ(g.capacityBytes(),
              64ULL * 65536ULL * 8192ULL);
}

TEST(AddressMapper, DecodeFieldsInRange)
{
    Geometry g;
    AddressMapper m(g);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const Addr a{rng.next64() % g.capacityBytes()};
        const DecodedAddr d = m.decode(a);
        EXPECT_LT(d.channel, g.channels);
        EXPECT_LT(d.rank, g.ranksPerChannel);
        EXPECT_LT(d.bank, g.banksPerRank);
        EXPECT_LT(d.row.value(), g.rowsPerBank);
        EXPECT_LT(d.column, g.bytesPerRow);
    }
}

TEST(AddressMapper, EncodeDecodeRoundTrip)
{
    Geometry g;
    AddressMapper m(g);
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const Addr a{(rng.next64() % g.capacityBytes()) & ~63ULL};
        const DecodedAddr d = m.decode(a);
        EXPECT_EQ(m.encode(d), a) << "addr " << a;
    }
}

TEST(AddressMapper, ConsecutiveLinesStripeChannels)
{
    Geometry g;
    AddressMapper m(g);
    const DecodedAddr d0 = m.decode(Addr{0});
    const DecodedAddr d1 = m.decode(Addr{64});
    EXPECT_NE(d0.channel, d1.channel);
    EXPECT_EQ(d0.row, d1.row);
}

TEST(AddressMapper, RowBitsAreHighOrder)
{
    Geometry g;
    AddressMapper m(g);
    // Two addresses one "row-stripe" apart differ only in row.
    const std::uint64_t row_stride = g.bytesPerRow * g.channels *
                                     g.banksPerRank *
                                     g.ranksPerChannel;
    const DecodedAddr a = m.decode(Addr{0});
    const DecodedAddr b = m.decode(Addr{row_stride});
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(b.row, a.row + 1);
}

TEST(DecodedAddr, FlatBankUniqueness)
{
    Geometry g;
    std::vector<bool> seen(g.totalBanks(), false);
    for (unsigned c = 0; c < g.channels; ++c) {
        for (unsigned r = 0; r < g.ranksPerChannel; ++r) {
            for (unsigned b = 0; b < g.banksPerRank; ++b) {
                DecodedAddr d{c, r, b, Row{0}, 0};
                const BankId id = d.flatBank(g);
                ASSERT_LT(id.value(), g.totalBanks());
                EXPECT_FALSE(seen[id.value()]);
                seen[id.value()] = true;
            }
        }
    }
}

TEST(DecodedAddr, ToStringMentionsFields)
{
    DecodedAddr d{1, 0, 5, Row{1234}, 64};
    const std::string s = d.toString();
    EXPECT_NE(s.find("ch1"), std::string::npos);
    EXPECT_NE(s.find("ba5"), std::string::npos);
    EXPECT_NE(s.find("row1234"), std::string::npos);
}

} // namespace
} // namespace dram
} // namespace graphene
