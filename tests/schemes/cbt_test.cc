/**
 * @file
 * Tests for the counter-based tree: splitting, conservative count
 * inheritance, burst refreshes, and counter-budget handling.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "schemes/cbt.hh"

namespace graphene {
namespace schemes {
namespace {

CbtConfig
smallConfig()
{
    CbtConfig c;
    c.numCounters = 8;
    c.levels = 3;
    c.rowHammerThreshold = 4000; // final threshold 1000
    c.rowsPerBank = 1024;
    return c;
}

TEST(Cbt, StartsWithOneRootCounter)
{
    Cbt cbt(smallConfig());
    EXPECT_EQ(cbt.allocatedCounters(), 1u);
    EXPECT_EQ(cbt.name(), "CBT-8");
}

TEST(Cbt, SplitThresholdsDoubleWithDepth)
{
    CbtConfig c = smallConfig();
    EXPECT_EQ(c.finalThreshold(), 1000u);
    EXPECT_EQ(c.splitThreshold(0), 125u);
    EXPECT_EQ(c.splitThreshold(1), 250u);
    EXPECT_EQ(c.splitThreshold(2), 500u);
    EXPECT_EQ(c.splitThreshold(3), 1000u);
}

TEST(Cbt, HotRowDeepensTree)
{
    Cbt cbt(smallConfig());
    RefreshAction action;
    for (std::uint64_t i = 0; i < 600; ++i)
        cbt.onActivate(Cycle{i}, Row{100}, action);
    // 600 ACTs pass level-0 (125), level-1 (250), level-2 (500)
    // splits: 3 splits -> 4 counters.
    EXPECT_EQ(cbt.allocatedCounters(), 4u);
}

TEST(Cbt, TriggerRefreshesCoveredRangePlusNeighbours)
{
    Cbt cbt(smallConfig());
    RefreshAction action;
    std::uint64_t trigger_step = 0;
    for (std::uint64_t i = 0; i < 2000 && trigger_step == 0; ++i) {
        action.clear();
        cbt.onActivate(Cycle{i}, Row{300}, action);
        if (!action.empty())
            trigger_step = i;
    }
    ASSERT_GT(trigger_step, 0u);
    // At max depth (level 3) each counter covers 1024/8 = 128 rows;
    // row 300 lands in [256, 384).
    std::set<Row> victims(action.victimRows.begin(),
                          action.victimRows.end());
    EXPECT_EQ(victims.size(), 128u + 2u);
    EXPECT_TRUE(victims.count(Row{300}));
    // Boundary neighbours of the [256, 384) range.
    EXPECT_TRUE(victims.count(Row{255}));
    EXPECT_TRUE(victims.count(Row{384}));
}

TEST(Cbt, CounterBudgetNeverExceeded)
{
    CbtConfig c = smallConfig();
    c.numCounters = 5;
    Cbt cbt(c);
    Rng rng(4);
    RefreshAction action;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        action.clear();
        cbt.onActivate(Cycle{i},
                       Row{static_cast<Row::rep>(rng.nextRange(1024))},
                       action);
        ASSERT_LE(cbt.allocatedCounters(), 5u);
    }
}

TEST(Cbt, CountsUpperBoundActualPerRow)
{
    // The covering counter's count must always be >= the actual ACT
    // count of every row it covers (the no-false-negative property).
    // With count inheritance on split this holds by construction; we
    // verify empirically: no row reaches finalThreshold actual ACTs
    // without a trigger covering it.
    CbtConfig c = smallConfig();
    Cbt cbt(c);
    Rng rng(9);
    std::map<Row, std::uint64_t> actual;
    std::map<Row, std::uint64_t> at_refresh;
    RefreshAction action;
    for (std::uint64_t i = 0; i < 100000; ++i) {
        const Row row = rng.bernoulli(0.5)
                            ? Row{77}
                            : Row{static_cast<Row::rep>(
                                  rng.nextRange(1024))};
        ++actual[row];
        action.clear();
        cbt.onActivate(Cycle{i}, row, action);
        for (Row v : action.victimRows)
            at_refresh[v] = actual[v];
        const std::uint64_t base =
            at_refresh.count(row) ? at_refresh[row] : 0;
        ASSERT_LE(actual[row] - base, c.finalThreshold())
            << "row " << row << " step " << i;
    }
}

TEST(Cbt, CountersPersistAcrossWindows)
{
    // CBT never learns the auto-refresh rotation, so its counters
    // persist; the trigger refresh is what resets a count (and it is
    // safe to do so, because the trigger just refreshed every victim
    // the counter covers).
    CbtConfig c = smallConfig();
    Cbt cbt(c);
    RefreshAction action;
    for (std::uint64_t i = 0; i < 600; ++i)
        cbt.onActivate(Cycle{i}, Row{100}, action);
    const unsigned counters = cbt.allocatedCounters();
    EXPECT_GT(counters, 1u);
    cbt.onActivate(c.timing.cREFW() + Cycle{1}, Row{100}, action);
    EXPECT_EQ(cbt.allocatedCounters(), counters);
}

TEST(Cbt, BenignTrafficEventuallyBursts)
{
    // Even a spread access pattern walks some counter to the final
    // threshold once enough ACTs accrue — CBT's chronic burstiness.
    CbtConfig c = smallConfig();
    Cbt cbt(c);
    Rng rng(11);
    RefreshAction action;
    std::uint64_t triggers = 0;
    for (std::uint64_t i = 0; i < 30000; ++i) {
        action.clear();
        cbt.onActivate(Cycle{i},
                       Row{static_cast<Row::rep>(rng.nextRange(1024))},
                       action);
        triggers += !action.empty();
    }
    EXPECT_GT(triggers, 0u);
}

TEST(Cbt, NonContiguousModeDoublesRefreshCost)
{
    // Contiguous mode refreshes length + 2 rows per trigger;
    // remap-safe mode issues one NRR per covered row (2 rows each).
    CbtConfig contiguous = smallConfig();
    CbtConfig remapped = smallConfig();
    remapped.assumeContiguous = false;

    auto count_rows = [](const CbtConfig &config) {
        Cbt cbt(config);
        RefreshAction action;
        for (std::uint64_t i = 0; i < 2000; ++i)
            cbt.onActivate(Cycle{i}, Row{100}, action);
        return action.victimRows.size() +
               2 * action.nrrAggressors.size();
    };
    const auto base = count_rows(contiguous);
    const auto doubled = count_rows(remapped);
    EXPECT_GT(doubled, base + base / 2);
}

TEST(Cbt, WarmStartUsesFullBudgetWithBoundedPhases)
{
    CbtConfig c = smallConfig();
    c.warmStart = true;
    Cbt cbt(c);
    EXPECT_EQ(cbt.allocatedCounters(), c.numCounters);
    // Warm phases sit strictly below the trigger, so the very first
    // ACT cannot cause more than one trigger.
    RefreshAction action;
    cbt.onActivate(Cycle{0}, Row{100}, action);
    EXPECT_LE(cbt.lastBurstRows(),
              c.rowsPerBank / (1u << 3) + 2);
}

TEST(Cbt, WarmStartTriggersUnderSpreadTrafficQuickly)
{
    // The steady-state point of warm start: benign spread traffic
    // produces bursts within a fraction of a window rather than
    // after several windows of warm-up.
    CbtConfig c = smallConfig();
    c.warmStart = true;
    Cbt cbt(c);
    Rng rng(5);
    RefreshAction action;
    std::uint64_t victims = 0;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        action.clear();
        cbt.onActivate(Cycle{i},
                       Row{static_cast<Row::rep>(rng.nextRange(1024))},
                       action);
        victims += action.victimRows.size();
    }
    EXPECT_GT(victims, 0u);
}

TEST(Cbt, AdaptiveReclaimDeepensHotRegionWhenSaturated)
{
    // Exhaust the counter budget with warm start, then hammer one
    // row: the adaptive tree must merge cold pairs and zoom into the
    // hot row, shrinking the burst to the deepest range size.
    CbtConfig c = smallConfig(); // 8 counters, 3 levels, 1024 rows
    c.warmStart = true;          // all 8 counters allocated
    c.adaptive = true;
    Cbt cbt(c);
    RefreshAction action;
    std::uint64_t last_burst = 0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        action.clear();
        cbt.onActivate(Cycle{i}, Row{300}, action);
        if (!action.empty())
            last_burst = cbt.lastBurstRows();
    }
    ASSERT_GT(last_burst, 0u);
    // Deepest level 3 over 1024 rows = 128-row ranges (+2 edges).
    EXPECT_EQ(last_burst, 130u);
}

TEST(Cbt, NonAdaptiveSaturatedTreeBurstsWide)
{
    // The CAL 2017 ablation: without reclamation a saturated tree
    // cannot deepen and the hot row's burst stays at the stuck
    // range's width.
    CbtConfig c = smallConfig();
    c.warmStart = true;
    c.adaptive = false;
    Cbt cbt(c);
    RefreshAction action;
    std::uint64_t last_burst = 0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        action.clear();
        cbt.onActivate(Cycle{i}, Row{300}, action);
        if (!action.empty())
            last_burst = cbt.lastBurstRows();
    }
    ASSERT_GT(last_burst, 0u);
    // Warm start balanced the 8 counters at 128-row ranges already
    // (1024 / 8); with deeper levels configured it would stay wide.
    EXPECT_GE(last_burst, 130u);
}

TEST(Cbt, MergedParentKeepsUpperBound)
{
    // After merge + resplit churn, no row may exceed the final
    // threshold without a covering refresh (the property that makes
    // max-of-children a safe merge rule).
    CbtConfig c = smallConfig();
    c.numCounters = 4;
    c.adaptive = true;
    Cbt cbt(c);
    Rng rng(17);
    std::map<Row, std::uint64_t> actual, at_refresh;
    RefreshAction action;
    for (std::uint64_t i = 0; i < 200000; ++i) {
        // Alternate hot regions to force merge/split churn.
        const Row hot{(i / 20000) % 2 ? 100u : 900u};
        const Row row = rng.bernoulli(0.6)
                            ? hot
                            : Row{static_cast<Row::rep>(
                                  rng.nextRange(1024))};
        ++actual[row];
        action.clear();
        cbt.onActivate(Cycle{i}, row, action);
        for (Row v : action.victimRows)
            at_refresh[v] = actual[v];
        const std::uint64_t base =
            at_refresh.count(row) ? at_refresh[row] : 0;
        ASSERT_LE(actual[row] - base, c.finalThreshold())
            << "row " << row << " step " << i;
    }
}

TEST(Cbt, CostMatchesBitFormula)
{
    CbtConfig c;
    c.numCounters = 128;
    c.rowHammerThreshold = 50000;
    c.rowsPerBank = 65536;
    Cbt cbt(c);
    const TableCost cost = cbt.cost();
    EXPECT_EQ(cost.entries, 128u);
    // 16 prefix + 14 count bits = 30 per counter: 3,840 bits, within
    // 1% of the paper's reported 3,824 (Table IV).
    EXPECT_EQ(cost.sramBits, 128u * 30u);
    EXPECT_EQ(cost.camBits, 0u);
    EXPECT_NEAR(static_cast<double>(cost.sramBits), 3824.0, 40.0);
}

} // namespace
} // namespace schemes
} // namespace graphene
