/**
 * @file
 * Tests for PARA: refresh-rate statistics, victim adjacency, and the
 * per-threshold probability table (Section V-A / V-C).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "schemes/para.hh"

namespace graphene {
namespace schemes {
namespace {

TEST(Para, RefreshRateMatchesProbability)
{
    ParaConfig config;
    config.probabilities = {0.01};
    Para para(config);
    RefreshAction action;
    const int n = 500000;
    for (std::uint64_t i = 0; i < n; ++i)
        para.onActivate(Cycle{i}, Row{1000}, action);
    const double rate =
        static_cast<double>(action.victimRows.size()) / n;
    EXPECT_NEAR(rate, 0.01, 0.001);
}

TEST(Para, VictimsAreAdjacent)
{
    ParaConfig config;
    config.probabilities = {0.5};
    Para para(config);
    RefreshAction action;
    for (std::uint64_t i = 0; i < 1000; ++i)
        para.onActivate(Cycle{i}, Row{1000}, action);
    bool saw_lower = false, saw_upper = false;
    for (Row v : action.victimRows) {
        ASSERT_TRUE(v == Row{999} || v == Row{1001})
            << "victim " << v;
        saw_lower |= v == Row{999};
        saw_upper |= v == Row{1001};
    }
    EXPECT_TRUE(saw_lower);
    EXPECT_TRUE(saw_upper);
}

TEST(Para, BothSidesEquallyLikely)
{
    ParaConfig config;
    config.probabilities = {1.0};
    Para para(config);
    RefreshAction action;
    int lower = 0;
    const int n = 100000;
    for (std::uint64_t i = 0; i < n; ++i) {
        action.clear();
        para.onActivate(Cycle{i}, Row{1000}, action);
        ASSERT_EQ(action.victimRows.size(), 1u);
        lower += action.victimRows[0] == Row{999};
    }
    EXPECT_NEAR(lower / static_cast<double>(n), 0.5, 0.01);
}

TEST(Para, EdgeRowsRefreshTheOnlyNeighbour)
{
    ParaConfig config;
    config.probabilities = {1.0};
    config.rowsPerBank = 1024;
    Para para(config);
    RefreshAction action;
    for (std::uint64_t i = 0; i < 100; ++i)
        para.onActivate(Cycle{i}, Row{0}, action);
    for (Row v : action.victimRows)
        EXPECT_EQ(v, Row{1});
    action.clear();
    for (std::uint64_t i = 0; i < 100; ++i)
        para.onActivate(Cycle{i}, Row{1023}, action);
    for (Row v : action.victimRows)
        EXPECT_EQ(v, Row{1022});
}

TEST(Para, NonAdjacentDistancesCovered)
{
    ParaConfig config;
    config.probabilities = {1.0, 1.0};
    Para para(config);
    RefreshAction action;
    para.onActivate(Cycle{0}, Row{1000}, action);
    ASSERT_EQ(action.victimRows.size(), 2u);
    const Row d1 = action.victimRows[0];
    const Row d2 = action.victimRows[1];
    EXPECT_TRUE(d1 == Row{999} || d1 == Row{1001});
    EXPECT_TRUE(d2 == Row{998} || d2 == Row{1002});
}

TEST(Para, ZeroTableCost)
{
    Para para(ParaConfig{});
    EXPECT_EQ(para.cost().totalBits(), 0u);
}

TEST(Para, RequiredProbabilityMatchesPaperPoints)
{
    EXPECT_NEAR(Para::requiredProbability(50000), 0.00145, 1e-5);
    EXPECT_NEAR(Para::requiredProbability(25000), 0.00295, 1e-5);
    EXPECT_NEAR(Para::requiredProbability(12500), 0.00602, 1e-5);
    EXPECT_NEAR(Para::requiredProbability(6250), 0.01224, 1e-5);
    EXPECT_NEAR(Para::requiredProbability(3125), 0.02485, 1e-5);
    EXPECT_NEAR(Para::requiredProbability(1562), 0.05034, 2e-4);
}

TEST(Para, RequiredProbabilityMonotone)
{
    double prev = 0.0;
    for (std::uint64_t trh = 50000; trh >= 1000; trh /= 2) {
        const double p = Para::requiredProbability(trh);
        EXPECT_GT(p, prev) << "trh " << trh;
        prev = 0.0; // compare successive halvings directly below
        EXPECT_GT(Para::requiredProbability(trh / 2), p);
    }
}

TEST(Para, DeterministicWithSameSeed)
{
    ParaConfig config;
    config.probabilities = {0.1};
    config.seed = 77;
    Para a(config), b(config);
    RefreshAction ra, rb;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        a.onActivate(Cycle{i}, Row{500}, ra);
        b.onActivate(Cycle{i}, Row{500}, rb);
    }
    EXPECT_EQ(ra.victimRows, rb.victimRows);
}

} // namespace
} // namespace schemes
} // namespace graphene
