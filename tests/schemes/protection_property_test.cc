/**
 * @file
 * The gold-standard protection property: every counter-based scheme
 * (Graphene, TWiCe, CBT) must produce ZERO bit flips in the physical
 * fault model under every attack pattern, while an unprotected bank
 * demonstrably flips under the same attacks (so the test would catch
 * a broken fault model too).
 *
 * Runs use a reduced Row Hammer threshold so an unprotected attack
 * succeeds quickly; every scheme is configured for that same
 * threshold, which is exactly the paper's scaling scenario
 * (Section V-C).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/config.hh"
#include "sim/act_engine.hh"

namespace graphene {
namespace sim {
namespace {

std::unique_ptr<workloads::ActPattern>
makePattern(const std::string &kind, std::uint64_t rows)
{
    using namespace workloads;
    if (kind == "single")
        return patterns::s3(rows);
    if (kind == "double-sided")
        return std::make_unique<DoubleSidedPattern>(
            Row{static_cast<Row::rep>(rows / 2)});
    if (kind == "s1")
        return patterns::s1(10, rows, 5);
    if (kind == "s2")
        return patterns::s2(10, rows, 6);
    if (kind == "s4")
        return patterns::s4(rows, 7);
    if (kind == "prohit-adv")
        return patterns::proHitAdversarial(
            Row{static_cast<Row::rep>(rows / 2)});
    if (kind == "mrloc-adv")
        return patterns::mrLocAdversarial(
            Row{static_cast<Row::rep>(rows / 4)}, Row{16});
    return patterns::counterWorstCase(64, rows, 8);
}

ActEngineConfig
makeConfig(schemes::SchemeKind kind, std::uint64_t trh)
{
    ActEngineConfig config;
    config.scheme.kind = kind;
    config.scheme.rowHammerThreshold = trh;
    config.rowsPerBank = 8192;
    config.scheme.rowsPerBank = 8192;
    config.windows = 1.0;
    config.actRate = 1.0;
    return config;
}

TEST(ProtectionSanity, UnprotectedBankFlipsUnderSingleSidedHammer)
{
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::None, 10000);
    config.physicalThreshold = 10000;
    auto pattern = makePattern("single", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u);
    EXPECT_EQ(r.victimRowsRefreshed, 0u);
}

TEST(ProtectionSanity, UnprotectedBankFlipsUnderDoubleSidedHammer)
{
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::None, 10000);
    config.physicalThreshold = 10000;
    auto pattern = makePattern("double-sided", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u);
}

TEST(ProtectionSanity, RefreshAloneStopsSlowHammer)
{
    // At a low ACT rate the periodic refresh rotation alone keeps
    // accumulated disturbance below a high threshold.
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::None, 2000000);
    config.physicalThreshold = 2000000;
    config.actRate = 0.5;
    auto pattern = makePattern("single", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_EQ(r.bitFlips, 0u);
}

/** (scheme, pattern, threshold) grid for the zero-flip property. */
class NoFalseNegative
    : public ::testing::TestWithParam<
          std::tuple<schemes::SchemeKind, std::string, std::uint64_t>>
{
};

TEST_P(NoFalseNegative, ZeroBitFlips)
{
    const auto [scheme, pattern_kind, trh] = GetParam();
    ActEngineConfig config = makeConfig(scheme, trh);
    auto pattern = makePattern(pattern_kind, config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_EQ(r.bitFlips, 0u)
        << schemes::schemeKindName(scheme) << " failed vs "
        << pattern->name() << " at T_RH=" << trh;
}

INSTANTIATE_TEST_SUITE_P(
    CounterSchemes, NoFalseNegative,
    ::testing::Combine(
        ::testing::Values(schemes::SchemeKind::Graphene,
                          schemes::SchemeKind::TwiCe,
                          schemes::SchemeKind::Cbt),
        ::testing::Values("single", "double-sided", "s1", "s2", "s4",
                          "prohit-adv", "mrloc-adv", "worst-case"),
        ::testing::Values(10000ULL, 4000ULL)),
    [](const auto &info) {
        std::string name =
            schemes::schemeKindName(std::get<0>(info.param)) + "_" +
            std::get<1>(info.param) + "_t" +
            std::to_string(std::get<2>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ProtectionCost, GrapheneRefreshesStayNearWorstCaseBound)
{
    // Even under the counter-worst-case pattern, Graphene's victim
    // rows per tREFW stay within the analytic bound of Section IV-C.
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Graphene, 10000);
    auto pattern = makePattern("worst-case", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);

    core::GrapheneConfig gc;
    gc.rowHammerThreshold = 10000;
    gc.resetWindowDivisor = config.scheme.grapheneK;
    EXPECT_LE(r.victimRowsRefreshed,
              gc.worstCaseVictimRowsPerRefw());
}

/**
 * Sensitivity (failure injection): deliberately mis-configured
 * defences must be caught by the fault model, proving the zero-flip
 * assertions above are not vacuous.
 */
TEST(FailureInjection, UndersizedGrapheneThresholdFlips)
{
    // A Graphene derived for a 4x higher threshold than the physical
    // cells tolerate tracks too lazily and must lose.
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Graphene, 16000);
    config.physicalThreshold = 4000;
    config.windows = 2.0;
    auto pattern = makePattern("double-sided", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u);
}

TEST(FailureInjection, NaiveTEqualToTrhFlips)
{
    // Section III-B's point: naively setting T = T_RH (ignoring the
    // double-sided factor and the refresh-phase factor) is unsafe.
    // Emulate it by giving Graphene a threshold 4(k+1)/2... i.e. a
    // config whose derived T equals the physical T_RH.
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Graphene, 24000);
    config.scheme.grapheneK = 1; // derived T = 24000/4 = 6000
    config.physicalThreshold = 6000;
    config.windows = 2.0;
    auto pattern = makePattern("double-sided", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u);
}

TEST(FailureInjection, RadiusOneSchemeMissesRadiusTwoPhysics)
{
    // +/-2 physics against a +/-1 defence: the distance-2 victims
    // are left to the refresh rotation and flip (Section III-D's
    // motivation).
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Graphene, 4000);
    config.faultRadius = 2;
    config.windows = 2.0;
    auto pattern = makePattern("single", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u);
}

TEST(NonAdjacent, RadiusTwoSchemeCoversRadiusTwoPhysics)
{
    for (auto kind : {schemes::SchemeKind::Graphene,
                      schemes::SchemeKind::TwiCe,
                      schemes::SchemeKind::Cbt}) {
        ActEngineConfig config = makeConfig(kind, 4000);
        config.scheme.blastRadius = 2;
        config.faultRadius = 2;
        config.windows = 2.0;
        auto pattern = makePattern("single", config.rowsPerBank);
        const ActEngineResult r = runActStream(config, *pattern);
        EXPECT_EQ(r.bitFlips, 0u)
            << schemes::schemeKindName(kind);
    }
}

TEST(NonAdjacent, RadiusThreeGrapheneHoldsUnderWorstCase)
{
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Graphene, 12000);
    config.scheme.blastRadius = 3;
    config.faultRadius = 3;
    config.windows = 1.0;
    auto pattern = makePattern("worst-case", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_EQ(r.bitFlips, 0u);
    EXPECT_GT(r.victimRowsRefreshed, 0u);
}

/**
 * Section II-C: internal row remapping. NRR-based schemes are immune
 * (the device resolves physical adjacency); CBT's contiguous range
 * refresh silently misses the true victims unless it falls back to
 * per-row NRRs at twice the cost.
 */
TEST(Remap, GrapheneImmuneToRemapping)
{
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Graphene, 4000);
    config.remap = true;
    config.windows = 2.0;
    auto pattern = makePattern("double-sided", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_EQ(r.bitFlips, 0u);
    EXPECT_GT(r.victimRowsRefreshed, 0u);
}

TEST(Remap, TwiCeImmuneToRemapping)
{
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::TwiCe, 4000);
    config.remap = true;
    config.windows = 2.0;
    auto pattern = makePattern("single", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_EQ(r.bitFlips, 0u);
}

TEST(Remap, ContiguousCbtMissesRemappedVictims)
{
    ActEngineConfig config = makeConfig(schemes::SchemeKind::Cbt,
                                        4000);
    config.remap = true;
    config.scheme.cbtAssumeContiguous = true;
    config.windows = 2.0;
    auto pattern = makePattern("single", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u)
        << "the Section II-C caveat should have bitten";
}

TEST(Remap, NrrFallbackCbtSurvivesRemappingAtTwiceTheCost)
{
    auto run = [](bool contiguous, bool remap) {
        ActEngineConfig config =
            makeConfig(schemes::SchemeKind::Cbt, 4000);
        config.remap = remap;
        config.scheme.cbtAssumeContiguous = contiguous;
        config.windows = 2.0;
        auto pattern = makePattern("single", config.rowsPerBank);
        return runActStream(config, *pattern);
    };
    const ActEngineResult safe = run(false, true);
    EXPECT_EQ(safe.bitFlips, 0u);
    EXPECT_GT(safe.victimRowsRefreshed, 0u);

    const ActEngineResult base = run(true, false);
    EXPECT_EQ(base.bitFlips, 0u);
    // The N/2^l x 2 vs N/2^l + 2 cost comparison concerns wide
    // ranges and is asserted in Cbt.NonContiguousModeDoublesRefresh-
    // Cost; under this single-row attack the adaptive tree deepens
    // to single-row ranges where both strategies cost a few rows.
}

TEST(ProtectionCost, ProbabilisticSchemesAreNotGuaranteed)
{
    // PARA at far-below-required probability must flip eventually —
    // demonstrating why "near-complete" needs the solved p.
    ActEngineConfig config =
        makeConfig(schemes::SchemeKind::Para, 4000);
    config.physicalThreshold = 4000;
    config.windows = 2.0;
    // Force a hopeless probability via a custom scheme spec: reuse
    // PARA for a much higher assumed threshold (tiny p).
    config.scheme.rowHammerThreshold = 4000000;
    auto pattern = makePattern("double-sided", config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_GT(r.bitFlips, 0u);
}

} // namespace
} // namespace sim
} // namespace graphene
