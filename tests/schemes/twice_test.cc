/**
 * @file
 * Tests for TWiCe: allocation, lifetime pruning, trigger threshold,
 * table-size bound, and overflow fallback.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "schemes/twice.hh"

namespace graphene {
namespace schemes {
namespace {

TwiCeConfig
smallConfig()
{
    TwiCeConfig c;
    c.rowHammerThreshold = 4000; // trigger 1000
    c.rowsPerBank = 4096;
    return c;
}

TEST(TwiCe, DerivedParameters)
{
    TwiCeConfig c; // T_RH = 50K
    EXPECT_EQ(c.triggerThreshold(), 12500u);
    EXPECT_EQ(c.intervalsPerWindow(), 8205u);
    EXPECT_NEAR(c.pruneThreshold(), 12500.0 / 8205.0, 1e-9);
    // The analytic entry bound: ~max_acts/thPI * H(8205) ~ 1000.
    EXPECT_GT(c.requiredEntries(), 500u);
    EXPECT_LT(c.requiredEntries(), 2000u);
}

TEST(TwiCe, AllocatesOnFirstAct)
{
    TwiCe tw(smallConfig());
    RefreshAction action;
    tw.onActivate(Cycle{0}, Row{100}, action);
    EXPECT_EQ(tw.validEntries(), 1u);
    tw.onActivate(Cycle{1}, Row{200}, action);
    EXPECT_EQ(tw.validEntries(), 2u);
    tw.onActivate(Cycle{2}, Row{100}, action);
    EXPECT_EQ(tw.validEntries(), 2u);
}

TEST(TwiCe, TriggersAtThresholdAndResets)
{
    TwiCeConfig c = smallConfig();
    TwiCe tw(c);
    RefreshAction action;
    for (std::uint64_t i = 0; i < c.triggerThreshold() - 1; ++i) {
        action.clear();
        tw.onActivate(Cycle{i}, Row{100}, action);
        ASSERT_TRUE(action.empty()) << "premature trigger at " << i;
    }
    action.clear();
    tw.onActivate(Cycle{9999}, Row{100}, action);
    ASSERT_EQ(action.nrrAggressors.size(), 1u);
    EXPECT_EQ(action.nrrAggressors[0], Row{100});
    EXPECT_EQ(tw.victimRefreshEvents(), 1u);

    // Count reset: the next trigger needs another full threshold.
    for (std::uint64_t i = 0; i < c.triggerThreshold() - 1; ++i) {
        action.clear();
        tw.onActivate(Cycle{20000 + i}, Row{100}, action);
        ASSERT_TRUE(action.empty());
    }
}

TEST(TwiCe, SlowRowsArePruned)
{
    TwiCe tw(smallConfig());
    RefreshAction action;
    tw.onActivate(Cycle{0}, Row{100}, action); // count 1
    // After a few pruning intervals, count 1 < thPI * life: pruned.
    for (std::uint64_t i = 0; i < 20; ++i)
        tw.onRefresh(Cycle{i}, action);
    EXPECT_EQ(tw.validEntries(), 0u);
}

TEST(TwiCe, FastRowsSurvivePruning)
{
    TwiCeConfig c = smallConfig();
    TwiCe tw(c);
    RefreshAction action;
    // Feed well above thPI activations per interval.
    const auto per_interval =
        static_cast<std::uint64_t>(c.pruneThreshold()) + 5;
    for (std::uint64_t interval = 0; interval < 50; ++interval) {
        for (std::uint64_t i = 0; i < per_interval; ++i)
            tw.onActivate(Cycle{interval * 1000 + i}, Row{100},
                          action);
        tw.onRefresh(Cycle{interval * 1000 + 999}, action);
        ASSERT_EQ(tw.validEntries(), 1u) << "interval " << interval;
    }
}

TEST(TwiCe, TriggeredEntryIsPrunedAtNextInterval)
{
    // After a trigger resets the count, the entry can no longer meet
    // thPI x life and the next pruning interval drops it — its
    // victims were just refreshed, so dropping is safe.
    TwiCeConfig c = smallConfig();
    TwiCe tw(c);
    RefreshAction action;
    tw.onRefresh(Cycle{0}, action); // age the clock so life > 0 later
    for (std::uint64_t i = 0; i < c.triggerThreshold(); ++i)
        tw.onActivate(Cycle{i}, Row{100}, action);
    EXPECT_EQ(tw.victimRefreshEvents(), 1u);
    EXPECT_EQ(tw.validEntries(), 1u);
    tw.onRefresh(Cycle{99999}, action);
    EXPECT_EQ(tw.validEntries(), 0u);
}

TEST(TwiCe, CannotAccumulateTriggerAcrossPruneEpochs)
{
    // A row that is pruned and re-allocated restarts its count; the
    // total it can accrue without a trigger across epochs within one
    // window stays below thPI x intervals == triggerThreshold, so
    // the victims survive (the TWiCe soundness argument).
    TwiCeConfig c = smallConfig();
    TwiCe tw(c);
    RefreshAction action;
    std::uint64_t total_without_trigger = 0;
    // One ACT per interval: always pruned, never triggered.
    for (std::uint64_t interval = 0; interval < 100; ++interval) {
        tw.onActivate(Cycle{interval * 10}, Row{100}, action);
        ++total_without_trigger;
        tw.onRefresh(Cycle{interval * 10 + 5}, action);
        ASSERT_TRUE(action.empty());
    }
    EXPECT_LT(total_without_trigger,
              c.triggerThreshold());
}

TEST(TwiCe, PeakOccupancyStaysWithinAnalyticBound)
{
    TwiCeConfig c;
    c.rowHammerThreshold = 50000;
    c.rowsPerBank = 65536;
    TwiCe tw(c);
    Rng rng(3);
    RefreshAction action;
    // Max-rate ACT stream (165 per tREFI) with random rows — the
    // allocation-heaviest realistic pattern.
    std::uint64_t cycle = 0;
    for (int interval = 0; interval < 2000; ++interval) {
        for (int i = 0; i < 165; ++i)
            tw.onActivate(Cycle{cycle++},
                          Row{static_cast<Row::rep>(
                              rng.nextRange(65536))},
                          action);
        tw.onRefresh(Cycle{cycle++}, action);
    }
    EXPECT_LE(tw.peakEntries(), c.requiredEntries());
    EXPECT_EQ(tw.overflowFallbacks(), 0u);
}

TEST(TwiCe, CostAnOrderOfMagnitudeAboveGraphene)
{
    TwiCeConfig c;
    TwiCe tw(c);
    const TableCost cost = tw.cost();
    // Paper Table IV: 20,484 CAM + 15,932 SRAM bits. Our analytic
    // layout lands in the same ~10x-Graphene regime.
    EXPECT_GT(cost.totalBits(), 10u * 2511u);
    EXPECT_GT(cost.camBits, 0u);
    EXPECT_GT(cost.sramBits, 0u);
}

TEST(TwiCe, OverflowFallbackStillProtects)
{
    TwiCeConfig c = smallConfig();
    c.maxEntries = 4;
    TwiCe tw(c);
    RefreshAction action;
    // Five simultaneously hot rows against a 4-entry table: the
    // fifth must produce conservative NRRs, not silent dropping.
    for (std::uint64_t round = 0; round < 100; ++round)
        for (std::uint64_t r = 0; r < 5; ++r)
            tw.onActivate(Cycle{round * 5 + r},
                          Row{static_cast<Row::rep>(100 + r * 10)},
                          action);
    EXPECT_GT(tw.overflowFallbacks(), 0u);
    EXPECT_FALSE(action.nrrAggressors.empty());
}

} // namespace
} // namespace schemes
} // namespace graphene
