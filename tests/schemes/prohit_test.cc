/**
 * @file
 * Tests for PRoHIT's table management and its Figure 7(a) starvation
 * vulnerability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "schemes/prohit.hh"
#include "workloads/act_patterns.hh"

namespace graphene {
namespace schemes {
namespace {

ProHitConfig
alwaysInsert()
{
    ProHitConfig config;
    config.insertionProbability = 1.0;
    config.refreshProbability = 1.0;
    return config;
}

TEST(ProHit, VictimsEnterColdTable)
{
    ProHit p(alwaysInsert());
    RefreshAction action;
    p.onActivate(Cycle{0}, Row{100}, action);
    const auto &cold = p.coldTable();
    EXPECT_EQ(cold.size(), 2u);
    EXPECT_NE(std::find(cold.begin(), cold.end(), Row{99}),
              cold.end());
    EXPECT_NE(std::find(cold.begin(), cold.end(), Row{101}),
              cold.end());
}

TEST(ProHit, RepeatedVictimPromotesToHot)
{
    ProHit p(alwaysInsert());
    RefreshAction action;
    p.onActivate(Cycle{0}, Row{100}, action);
    p.onActivate(Cycle{1}, Row{100}, action);
    const auto &hot = p.hotTable();
    EXPECT_EQ(hot.size(), 2u);
    EXPECT_NE(std::find(hot.begin(), hot.end(), Row{99}),
              hot.end());
}

TEST(ProHit, ColdTableEvictsOldestWhenFull)
{
    ProHit p(alwaysInsert());
    RefreshAction action;
    // 4 cold entries; present 3 ACTs = 6 distinct victims.
    p.onActivate(Cycle{0}, Row{100}, action);
    p.onActivate(Cycle{1}, Row{200}, action);
    p.onActivate(Cycle{2}, Row{300}, action);
    const auto &cold = p.coldTable();
    EXPECT_EQ(cold.size(), 4u);
    // The first ACT's victims (99, 101) must have been evicted.
    EXPECT_EQ(std::find(cold.begin(), cold.end(), Row{99}),
              cold.end());
}

TEST(ProHit, RefreshTakesTopHotEntry)
{
    ProHit p(alwaysInsert());
    RefreshAction action;
    p.onActivate(Cycle{0}, Row{100}, action); // victims cold
    p.onActivate(Cycle{1}, Row{100}, action); // victims hot
    EXPECT_TRUE(action.empty());

    p.onRefresh(Cycle{2}, action);
    ASSERT_EQ(action.victimRows.size(), 1u);
    const Row refreshed = action.victimRows[0];
    EXPECT_TRUE(refreshed == Row{99} || refreshed == Row{101});
    // The refreshed entry leaves the hot table.
    const auto &hot = p.hotTable();
    EXPECT_EQ(std::find(hot.begin(), hot.end(), refreshed),
              hot.end());
}

TEST(ProHit, RefreshWithEmptyTablesDoesNothing)
{
    ProHit p(alwaysInsert());
    RefreshAction action;
    p.onRefresh(Cycle{0}, action);
    EXPECT_TRUE(action.empty());
}

TEST(ProHit, Figure7aStarvesOuterVictims)
{
    // Under {x-4, x-2, x-2, x, x, x, x+2, x+2, x+4}, rows x-5/x+5 are
    // hammered by x-4/x+4 but should almost never be refreshed:
    // hotter victims (x+-1, x+-3) dominate the tables.
    ProHitConfig config;
    config.insertionProbability = 0.05;
    ProHit p(config);
    auto pattern = workloads::patterns::proHitAdversarial(Row{1000});

    std::map<Row, int> refreshes;
    RefreshAction action;
    for (std::uint64_t i = 0; i < 300000; ++i) {
        action.clear();
        p.onActivate(Cycle{i}, pattern->next(), action);
        if (i % 165 == 0) // REF cadence relative to ACT rate
            p.onRefresh(Cycle{i}, action);
        for (Row v : action.victimRows)
            ++refreshes[v];
    }

    const int outer =
        refreshes[Row{995}] + refreshes[Row{1005}]; // x-5, x+5
    int inner = 0;
    for (Row r : {Row{999}, Row{1001}, Row{997}, Row{1003}})
        inner += refreshes[r];
    EXPECT_GT(inner, 0);
    // The starved rows receive a vanishing share of refreshes even
    // though their aggressors provide 2/9 of all ACTs.
    EXPECT_LT(outer * 20, inner)
        << "outer=" << outer << " inner=" << inner;
}

TEST(ProHit, CostIsTiny)
{
    ProHit p(ProHitConfig{});
    const TableCost cost = p.cost();
    EXPECT_EQ(cost.entries, 7u);
    EXPECT_EQ(cost.sramBits, 7u * 16u);
    EXPECT_EQ(cost.camBits, 0u);
}

} // namespace
} // namespace schemes
} // namespace graphene
