/**
 * @file
 * Tests for MRLoc's history queue and its Figure 7(b) degeneration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "schemes/mrloc.hh"
#include "workloads/act_patterns.hh"

namespace graphene {
namespace schemes {
namespace {

TEST(MrLoc, VictimsEnterQueue)
{
    MrLocConfig config;
    config.pBase = 0.0;
    config.pHot = 0.0;
    MrLoc m(config);
    RefreshAction action;
    m.onActivate(Cycle{0}, Row{100}, action);
    const auto &q = m.queue();
    EXPECT_EQ(q.size(), 2u);
    EXPECT_NE(std::find(q.begin(), q.end(), Row{99}), q.end());
    EXPECT_NE(std::find(q.begin(), q.end(), Row{101}), q.end());
}

TEST(MrLoc, QueueEvictsOldest)
{
    MrLocConfig config;
    config.queueEntries = 4;
    config.pBase = 0.0;
    config.pHot = 0.0;
    MrLoc m(config);
    RefreshAction action;
    m.onActivate(Cycle{0}, Row{100}, action);
    m.onActivate(Cycle{1}, Row{200}, action);
    m.onActivate(Cycle{2}, Row{300}, action);
    const auto &q = m.queue();
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(std::find(q.begin(), q.end(), Row{99}), q.end());
    EXPECT_NE(std::find(q.begin(), q.end(), Row{301}), q.end());
}

TEST(MrLoc, QueueHitMovesToTail)
{
    MrLocConfig config;
    config.pBase = 0.0;
    config.pHot = 0.0;
    MrLoc m(config);
    RefreshAction action;
    m.onActivate(Cycle{0}, Row{100}, action); // queue: 99, 101
    m.onActivate(Cycle{1}, Row{200}, action); // queue: 99, 101, 199, 201
    m.onActivate(Cycle{2}, Row{100}, action); // hits move 99, 101 to tail
    const auto &q = m.queue();
    EXPECT_EQ(q.back(), Row{101});
}

TEST(MrLoc, HotVictimRefreshedMoreOftenThanColdMiss)
{
    MrLocConfig config;
    config.pBase = 0.00145;
    config.pHot = 0.05;
    MrLoc m(config);
    RefreshAction action;
    // Hammer one row: its victims stay at the queue tail (hot).
    for (std::uint64_t i = 0; i < 200000; ++i)
        m.onActivate(Cycle{i}, Row{500}, action);
    const double hot_rate =
        static_cast<double>(action.victimRows.size()) / 200000.0;

    MrLoc cold(config);
    RefreshAction cold_action;
    // Touch 16 distinct victims round-robin (always evicted).
    auto pattern =
        workloads::patterns::mrLocAdversarial(Row{1000}, Row{10});
    for (std::uint64_t i = 0; i < 200000; ++i)
        cold.onActivate(Cycle{i}, pattern->next(), cold_action);
    const double cold_rate =
        static_cast<double>(cold_action.victimRows.size()) / 200000.0;

    EXPECT_GT(hot_rate, cold_rate * 5)
        << "hot " << hot_rate << " cold " << cold_rate;
}

TEST(MrLoc, Figure7bDegeneratesToParaBase)
{
    // 8 mutually non-adjacent rows -> 16 victims > 15 queue slots:
    // every lookup misses and the refresh probability collapses to
    // pBase/2 per victim (i.e. pBase per ACT), PARA-equivalent.
    MrLocConfig config;
    config.pBase = 0.00145;
    config.pHot = 0.05;
    MrLoc m(config);
    auto pattern =
        workloads::patterns::mrLocAdversarial(Row{1000}, Row{10});
    RefreshAction action;
    const std::uint64_t n = 2000000;
    for (std::uint64_t i = 0; i < n; ++i)
        m.onActivate(Cycle{i}, pattern->next(), action);
    const double rate =
        static_cast<double>(action.victimRows.size()) / n;
    EXPECT_NEAR(rate, config.pBase, config.pBase * 0.15);
}

TEST(MrLoc, SmallerSpacingKeepsQueueEffective)
{
    // With only 7 aggressors (14 victims <= 15 slots) the queue works
    // and the refresh rate rises well above pBase.
    MrLocConfig config;
    config.pBase = 0.00145;
    config.pHot = 0.05;
    MrLoc m(config);
    std::vector<Row> rows;
    for (unsigned i = 0; i < 7; ++i)
        rows.push_back(Row{static_cast<Row::rep>(1000 + i * 10)});
    workloads::RoundRobinPattern pattern("7rows", rows);
    RefreshAction action;
    const std::uint64_t n = 500000;
    for (std::uint64_t i = 0; i < n; ++i)
        m.onActivate(Cycle{i}, pattern.next(), action);
    const double rate =
        static_cast<double>(action.victimRows.size()) / n;
    EXPECT_GT(rate, config.pBase * 5);
}

TEST(MrLoc, CostIsQueueOnly)
{
    MrLoc m(MrLocConfig{});
    EXPECT_EQ(m.cost().entries, 15u);
    EXPECT_EQ(m.cost().sramBits, 15u * 16u);
}

} // namespace
} // namespace schemes
} // namespace graphene
