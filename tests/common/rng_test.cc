/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"

namespace graphene {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextRange(17), 17u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(5);
    const double p = 0.137;
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(p);
    const double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, p, 0.005);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(Rng, ExponentialMean)
{
    Rng rng(9);
    const double mean = 42.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, 1.0);
}

TEST(Rng, UniformBits)
{
    // Each of the 64 bit positions should be set about half the time.
    Rng rng(13);
    int counts[64] = {};
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = rng.next64();
        for (int b = 0; b < 64; ++b)
            counts[b] += (v >> b) & 1;
    }
    for (int b = 0; b < 64; ++b)
        EXPECT_NEAR(counts[b] / static_cast<double>(n), 0.5, 0.02)
            << "bit " << b;
}

} // namespace
} // namespace graphene
