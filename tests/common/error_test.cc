/**
 * @file
 * Unit tests for the typed-error primitives behind the library-wide
 * error-handling policy (DESIGN.md §9): Result<T>/Result<void>,
 * Error with notes, ErrorCollector's collect-all reporting, and
 * strprintf.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"

namespace graphene {
namespace {

Result<int>
parsePositive(int raw)
{
    if (raw <= 0)
        return Error(ErrorCode::InvalidArgument,
                     strprintf("%d is not positive", raw));
    return raw;
}

TEST(Error, CarriesCodeMessageAndLocation)
{
    const Error e(ErrorCode::Parse, "bad line");
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.message(), "bad line");
    EXPECT_NE(e.file(), nullptr);
    EXPECT_GT(e.line(), 0u);
    EXPECT_NE(e.describe().find("bad line"), std::string::npos);
}

TEST(Error, NotesAppearInDescribe)
{
    Error e(ErrorCode::Config, "config rejected");
    e.addNote("first rule").addNote("second rule");
    ASSERT_EQ(e.notes().size(), 2u);
    const std::string report = e.describe();
    EXPECT_NE(report.find("first rule"), std::string::npos);
    EXPECT_NE(report.find("second rule"), std::string::npos);
}

TEST(Error, CodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Parse), "parse");
    EXPECT_STREQ(errorCodeName(ErrorCode::Config), "config");
}

TEST(Result, ValueAndErrorAlternatives)
{
    const Result<int> ok = parsePositive(7);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.value(), 7);
    EXPECT_EQ(ok.valueOr(-1), 7);

    const Result<int> bad = parsePositive(-3);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(Result, MoveOutOfValue)
{
    Result<std::string> r = std::string("payload");
    const std::string moved = std::move(r).value();
    EXPECT_EQ(moved, "payload");
}

TEST(Result, VoidSuccessAndFailure)
{
    const Result<void> ok = Result<void>::success();
    EXPECT_TRUE(ok.ok());

    const Result<void> bad = Error(ErrorCode::Io, "stream died");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().message(), "stream died");
}

TEST(Result, WrongAlternativePanics)
{
    const Result<int> bad = parsePositive(0);
    EXPECT_DEATH(static_cast<void>(bad.value()), "Result::value");
    const Result<int> ok = parsePositive(1);
    EXPECT_DEATH(static_cast<void>(ok.error()), "Result::error");
}

TEST(ErrorCollector, EmptyFinishesOk)
{
    ErrorCollector errors(ErrorCode::Config, "test config");
    EXPECT_TRUE(errors.empty());
    EXPECT_TRUE(errors.finish().ok());
}

TEST(ErrorCollector, CollectsEveryViolation)
{
    ErrorCollector errors(ErrorCode::Config, "test config");
    errors.add("rule one broken");
    errors.add("rule two broken");
    EXPECT_EQ(errors.count(), 2u);

    const Result<void> result = errors.finish();
    ASSERT_FALSE(result.ok());
    const Error &e = result.error();
    EXPECT_EQ(e.code(), ErrorCode::Config);
    EXPECT_NE(e.message().find("test config"), std::string::npos);
    EXPECT_NE(e.message().find("2 rule(s)"), std::string::npos);
    ASSERT_EQ(e.notes().size(), 2u);
    EXPECT_EQ(e.notes()[0], "rule one broken");
    EXPECT_EQ(e.notes()[1], "rule two broken");
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%s=%d", "x", 42), "x=42");
    EXPECT_EQ(strprintf("%zu", static_cast<std::size_t>(9)), "9");
    // Long output must not be truncated by any fixed buffer.
    const std::string big(500, 'a');
    EXPECT_EQ(strprintf("%s", big.c_str()), big);
}

} // namespace
} // namespace graphene
