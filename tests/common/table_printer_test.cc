/**
 * @file
 * Unit tests for the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table_printer.hh"

namespace graphene {
namespace {

TEST(TablePrinter, AlignedOutputContainsEverything)
{
    TablePrinter t("Demo");
    t.header({"col-a", "b"});
    t.row({"1", "two"});
    t.row({"three", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("col-a"), std::string::npos);
    EXPECT_NE(s.find("three"), std::string::npos);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter t("Demo");
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 3), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.0034, 2), "0.34%");
    EXPECT_EQ(TablePrinter::pct(0.051, 1), "5.1%");
}

TEST(TablePrinter, RowsOfDifferentWidthsDoNotCrash)
{
    TablePrinter t("Ragged");
    t.header({"a"});
    t.row({"1", "2", "3"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}

} // namespace
} // namespace graphene
