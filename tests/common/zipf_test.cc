/**
 * @file
 * Unit tests for the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "common/zipf.hh"

namespace graphene {
namespace {

TEST(Zipf, SamplesStayInRange)
{
    Rng rng(1);
    ZipfSampler z(100, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(2);
    ZipfSampler z(1000, 0.99);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    // Rank 0 should dominate rank 99 by roughly 100^0.99.
    EXPECT_GT(counts[0], counts[99] * 10);
    // The head (top 10%) should hold the majority of samples.
    int head = 0;
    for (int i = 0; i < 100; ++i)
        head += counts[i];
    EXPECT_GT(head, 50000);
}

TEST(Zipf, NearUniformWhenThetaTiny)
{
    Rng rng(3);
    ZipfSampler z(10, 1e-9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    for (int i = 0; i < 10; ++i)
        EXPECT_NEAR(counts[i] / 100000.0, 0.1, 0.01);
}

TEST(Zipf, LargePopulationTailIsReachable)
{
    Rng rng(4);
    ZipfSampler z(1ULL << 20, 0.5);
    bool tail_hit = false;
    for (int i = 0; i < 100000 && !tail_hit; ++i)
        tail_hit = z.sample(rng) >= (1ULL << 16);
    EXPECT_TRUE(tail_hit);
}

} // namespace
} // namespace graphene
