/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace graphene {
namespace {

TEST(Scalar, StartsAtZeroAndAccumulates)
{
    Scalar s("x");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h("lat", 10, 100.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(250.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_DOUBLE_EQ(h.max(), 250.0);
    EXPECT_NEAR(h.mean(), (5 + 15 + 15 + 250) / 4.0, 1e-9);
}

TEST(Histogram, NegativeSamplesCountAsOverflow)
{
    Histogram h("neg", 4, 8.0);
    h.sample(-1.0);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, SamplesCountsEverythingIncludingOverflow)
{
    Histogram h("lat", 4, 8.0);
    h.sample(1.0);
    h.sample(100.0); // overflow
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.samples(), h.count());
}

TEST(Histogram, ResetClearsAllBookkeeping)
{
    // Regression: reset() must clear the overflow/drop counters too,
    // not just the buckets — stale overflow counts used to leak
    // across group resets.
    Histogram h("lat", 4, 8.0);
    h.sample(2.0);
    h.sample(50.0); // overflow
    h.sample(-1.0); // overflow
    ASSERT_EQ(h.samples(), 3u);
    ASSERT_EQ(h.overflow(), 2u);

    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (const auto bucket : h.buckets())
        EXPECT_EQ(bucket, 0u);

    // The histogram is fully reusable after the wipe.
    h.sample(3.0);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, PrintMentionsNameAndCount)
{
    Histogram h("lat", 4, 8.0);
    h.sample(1.0);
    std::ostringstream os;
    h.print(os);
    EXPECT_NE(os.str().find("lat"), std::string::npos);
    EXPECT_NE(os.str().find("n=1"), std::string::npos);
}

TEST(StatGroup, CreatesOnFirstUse)
{
    StatGroup g;
    EXPECT_EQ(g.get("acts"), 0.0);
    ++g.scalar("acts");
    ++g.scalar("acts");
    EXPECT_EQ(g.get("acts"), 2.0);
}

TEST(StatGroup, ResetClearsAll)
{
    StatGroup g;
    g.scalar("a") += 5;
    g.scalar("b") += 7;
    g.reset();
    EXPECT_EQ(g.get("a"), 0.0);
    EXPECT_EQ(g.get("b"), 0.0);
}

TEST(StatGroup, HistogramGetOrCreateKeepsFirstShape)
{
    StatGroup g;
    Histogram &h = g.histogram("lat", 4, 8.0);
    h.sample(1.0);
    // Later calls ignore the shape arguments and return the same
    // object.
    Histogram &again = g.histogram("lat", 64, 1000.0);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.buckets().size(), 4u);
    EXPECT_EQ(g.findHistogram("lat")->samples(), 1u);
    EXPECT_EQ(g.findHistogram("nope"), nullptr);
}

TEST(StatGroup, ResetClearsHistogramsToo)
{
    StatGroup g;
    g.histogram("lat", 4, 8.0).sample(99.0); // overflow
    g.scalar("acts") += 3;
    g.reset();
    EXPECT_EQ(g.get("acts"), 0.0);
    ASSERT_NE(g.findHistogram("lat"), nullptr);
    EXPECT_EQ(g.findHistogram("lat")->samples(), 0u);
    EXPECT_EQ(g.findHistogram("lat")->overflow(), 0u);
}

TEST(StatGroup, PrintListsEveryStat)
{
    StatGroup g;
    g.scalar("alpha") += 1;
    g.scalar("beta") += 2;
    std::ostringstream os;
    g.print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("beta"), std::string::npos);
}

} // namespace
} // namespace graphene
