/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace graphene {
namespace {

TEST(Scalar, StartsAtZeroAndAccumulates)
{
    Scalar s("x");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h("lat", 10, 100.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(250.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_DOUBLE_EQ(h.max(), 250.0);
    EXPECT_NEAR(h.mean(), (5 + 15 + 15 + 250) / 4.0, 1e-9);
}

TEST(Histogram, NegativeSamplesCountAsOverflow)
{
    Histogram h("neg", 4, 8.0);
    h.sample(-1.0);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, QuantileInterpolatesInsideBuckets)
{
    // 100 uniform samples over [0, 100): bucket k holds exactly the
    // samples [10k, 10k+10), so the interpolated quantiles land on
    // the underlying values (within one bucket width of rounding).
    Histogram h("lat", 10, 100.0);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Histogram, QuantileEdgeCases)
{
    Histogram empty("none", 4, 8.0);
    EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);

    Histogram one("one", 4, 8.0);
    one.sample(3.0);
    // A single sample occupies the whole CDF; q is clamped to [0,1].
    EXPECT_GT(one.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(one.quantile(-1.0), one.quantile(0.0));
    EXPECT_DOUBLE_EQ(one.quantile(2.0), one.quantile(1.0));
}

TEST(Histogram, QuantileInOverflowReportsMax)
{
    // Overflow samples occupy the top of the CDF, so a tail quantile
    // landing there must report the conservative max(), never a
    // value inside the bucketed range.
    Histogram h("lat", 4, 8.0);
    for (int i = 0; i < 9; ++i)
        h.sample(1.0);
    h.sample(1000.0); // overflow: the top 10% of the CDF
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 1000.0);
    EXPECT_LT(h.quantile(0.50), 8.0);
}

TEST(Histogram, SamplesCountsEverythingIncludingOverflow)
{
    Histogram h("lat", 4, 8.0);
    h.sample(1.0);
    h.sample(100.0); // overflow
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.samples(), h.count());
}

TEST(Histogram, ResetClearsAllBookkeeping)
{
    // Regression: reset() must clear the overflow/drop counters too,
    // not just the buckets — stale overflow counts used to leak
    // across group resets.
    Histogram h("lat", 4, 8.0);
    h.sample(2.0);
    h.sample(50.0); // overflow
    h.sample(-1.0); // overflow
    ASSERT_EQ(h.samples(), 3u);
    ASSERT_EQ(h.overflow(), 2u);

    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (const auto bucket : h.buckets())
        EXPECT_EQ(bucket, 0u);

    // The histogram is fully reusable after the wipe.
    h.sample(3.0);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, PrintMentionsNameAndCount)
{
    Histogram h("lat", 4, 8.0);
    h.sample(1.0);
    std::ostringstream os;
    h.print(os);
    EXPECT_NE(os.str().find("lat"), std::string::npos);
    EXPECT_NE(os.str().find("n=1"), std::string::npos);
}

TEST(StatGroup, CreatesOnFirstUse)
{
    StatGroup g;
    EXPECT_EQ(g.get("acts"), 0.0);
    ++g.scalar("acts");
    ++g.scalar("acts");
    EXPECT_EQ(g.get("acts"), 2.0);
}

TEST(StatGroup, ResetClearsAll)
{
    StatGroup g;
    g.scalar("a") += 5;
    g.scalar("b") += 7;
    g.reset();
    EXPECT_EQ(g.get("a"), 0.0);
    EXPECT_EQ(g.get("b"), 0.0);
}

TEST(StatGroup, HistogramGetOrCreateKeepsFirstShape)
{
    StatGroup g;
    Histogram &h = g.histogram("lat", 4, 8.0);
    h.sample(1.0);
    // Later calls ignore the shape arguments and return the same
    // object.
    Histogram &again = g.histogram("lat", 64, 1000.0);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.buckets().size(), 4u);
    EXPECT_EQ(g.findHistogram("lat")->samples(), 1u);
    EXPECT_EQ(g.findHistogram("nope"), nullptr);
}

TEST(StatGroup, ResetClearsHistogramsToo)
{
    StatGroup g;
    g.histogram("lat", 4, 8.0).sample(99.0); // overflow
    g.scalar("acts") += 3;
    g.reset();
    EXPECT_EQ(g.get("acts"), 0.0);
    ASSERT_NE(g.findHistogram("lat"), nullptr);
    EXPECT_EQ(g.findHistogram("lat")->samples(), 0u);
    EXPECT_EQ(g.findHistogram("lat")->overflow(), 0u);
}

TEST(StatGroup, PrintListsEveryStat)
{
    StatGroup g;
    g.scalar("alpha") += 1;
    g.scalar("beta") += 2;
    std::ostringstream os;
    g.print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("beta"), std::string::npos);
}

} // namespace
} // namespace graphene
