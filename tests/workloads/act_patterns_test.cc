/**
 * @file
 * Tests for the adversarial ACT patterns (S1-S4, Figure 7).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/act_patterns.hh"

namespace graphene {
namespace workloads {
namespace {

TEST(Patterns, SingleRowIsConstant)
{
    SingleRowPattern p(Row{123});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(p.next(), Row{123});
}

TEST(Patterns, RoundRobinCycles)
{
    RoundRobinPattern p("rr", {Row{1}, Row{2}, Row{3}});
    EXPECT_EQ(p.next(), Row{1});
    EXPECT_EQ(p.next(), Row{2});
    EXPECT_EQ(p.next(), Row{3});
    EXPECT_EQ(p.next(), Row{1});
}

TEST(Patterns, S1HasExactlyNDistinctRows)
{
    auto p = patterns::s1(10, 65536, 1);
    std::set<Row> rows;
    for (int i = 0; i < 100; ++i)
        rows.insert(p->next());
    EXPECT_EQ(rows.size(), 10u);
}

TEST(Patterns, S2MixesNoiseIntoRepeats)
{
    auto p = patterns::s2(10, 65536, 1);
    std::map<Row, int> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[p->next()];
    // The 10 base rows dominate; noise spreads over many rows.
    int hot = 0;
    for (const auto &kv : counts)
        hot += kv.second > 1000;
    EXPECT_EQ(hot, 10);
    EXPECT_GT(counts.size(), 1000u);
}

TEST(Patterns, S4IsHalfSingleHalfRandom)
{
    auto p = patterns::s4(65536, 2);
    std::map<Row, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[p->next()];
    EXPECT_NEAR(counts[Row{65536 / 2}] / static_cast<double>(n),
                0.5,
                0.02);
}

TEST(Patterns, Figure7aSequenceExact)
{
    auto p = patterns::proHitAdversarial(Row{1000});
    const Row expected[9] = {Row{996},  Row{998},  Row{998},
                             Row{1000}, Row{1000}, Row{1000},
                             Row{1002}, Row{1002}, Row{1004}};
    for (int rep = 0; rep < 3; ++rep)
        for (int i = 0; i < 9; ++i)
            EXPECT_EQ(p->next(), expected[i])
                << "rep " << rep << " pos " << i;
}

TEST(Patterns, Figure7bRowsMutuallyNonAdjacent)
{
    auto p = patterns::mrLocAdversarial(Row{500}, Row{10});
    std::set<Row> rows;
    for (int i = 0; i < 8; ++i)
        rows.insert(p->next());
    EXPECT_EQ(rows.size(), 8u);
    for (Row a : rows) {
        for (Row b : rows) {
            if (a != b) {
                EXPECT_GT(a > b ? a - b : b - a, 2);
            }
        }
    }
    // Round-robin order repeats.
    EXPECT_EQ(p->next(), Row{500});
}

TEST(Patterns, DoubleSidedAlternates)
{
    DoubleSidedPattern p(Row{100});
    std::set<Row> seen;
    seen.insert(p.next());
    seen.insert(p.next());
    EXPECT_EQ(seen, (std::set<Row>{Row{99}, Row{101}}));
}

TEST(Patterns, CounterWorstCaseEvenCoverage)
{
    auto p = patterns::counterWorstCase(64, 65536, 3);
    std::map<Row, int> counts;
    for (int i = 0; i < 6400; ++i)
        ++counts[p->next()];
    EXPECT_EQ(counts.size(), 64u);
    for (const auto &kv : counts)
        EXPECT_EQ(kv.second, 100);
}

TEST(Patterns, AdversarialSuiteIsComplete)
{
    auto suite = patterns::adversarialSuite(65536, 5);
    EXPECT_EQ(suite.size(), 6u);
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p->name());
    EXPECT_TRUE(names.count("S3-single-row"));
    EXPECT_TRUE(names.count("S1-repeat-10"));
    EXPECT_TRUE(names.count("S1-repeat-20"));
    EXPECT_TRUE(names.count("S4-single-noisy"));
}

} // namespace
} // namespace workloads
} // namespace graphene
