/**
 * @file
 * Tests for the synthetic trace generators and application profiles.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/profiles.hh"
#include "workloads/synthetic.hh"

namespace graphene {
namespace workloads {
namespace {

TEST(Synthetic, AddressesDecodeInRange)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    SyntheticParams p;
    SyntheticGenerator gen(p, mapper, 0, 1);
    for (int i = 0; i < 10000; ++i) {
        const CoreAccess a = gen.next();
        const dram::DecodedAddr d = mapper.decode(a.addr);
        EXPECT_LT(d.row.value(), g.rowsPerBank);
        EXPECT_LT(d.channel, g.channels);
    }
}

TEST(Synthetic, SequentialFractionControlsRowLocality)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    auto repeat_rate = [&](double seq) {
        SyntheticParams p;
        p.sequentialFraction = seq;
        SyntheticGenerator gen(p, mapper, 0, 1);
        Row prev = Row::invalid();
        int same = 0;
        for (int i = 0; i < 20000; ++i) {
            const dram::DecodedAddr d = mapper.decode(gen.next().addr);
            same += d.row == prev;
            prev = d.row;
        }
        return same / 20000.0;
    };
    EXPECT_GT(repeat_rate(0.95), repeat_rate(0.1) + 0.3);
}

TEST(Synthetic, MeanGapControlsIntensity)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    SyntheticParams p;
    p.meanGapCycles = 300.0;
    SyntheticGenerator gen(p, mapper, 0, 1);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(gen.next().gap.value());
    EXPECT_NEAR(sum / n, 300.0, 10.0);
}

TEST(Synthetic, WriteFractionHonoured)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    SyntheticParams p;
    p.writeFraction = 0.4;
    SyntheticGenerator gen(p, mapper, 0, 1);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().isWrite;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.4, 0.02);
}

TEST(Synthetic, CoresUseDistinctWorkingSets)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    SyntheticParams p;
    p.workingSetRows = 64;
    p.sequentialFraction = 0.0;
    SyntheticGenerator g0(p, mapper, 0, 1);
    SyntheticGenerator g1(p, mapper, 5, 1);
    std::set<Row> rows0, rows1;
    for (int i = 0; i < 2000; ++i) {
        rows0.insert(mapper.decode(g0.next().addr).row);
        rows1.insert(mapper.decode(g1.next().addr).row);
    }
    std::set<Row> overlap;
    for (Row r : rows0)
        if (rows1.count(r))
            overlap.insert(r);
    EXPECT_TRUE(overlap.empty());
}

TEST(Profiles, AllNamedAppsResolve)
{
    for (const auto &app : specHighApps())
        EXPECT_EQ(appProfile(app).value().name, app);
    for (const auto &app : multiThreadedApps())
        EXPECT_EQ(appProfile(app).value().name, app);
}

TEST(Profiles, UnknownAppIsTypedError)
{
    const auto result = appProfile("notanapp");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::NotFound);
    EXPECT_NE(result.error().message().find("unknown application"),
              std::string::npos)
        << result.error().message();
    EXPECT_NE(result.error().message().find("notanapp"),
              std::string::npos)
        << result.error().message();
}

TEST(Profiles, StreamingAppsAreSequentialAndIntense)
{
    const SyntheticParams lbm = appProfile("lbm").value();
    const SyntheticParams mcf = appProfile("mcf").value();
    EXPECT_GT(lbm.sequentialFraction, mcf.sequentialFraction);
    EXPECT_LT(lbm.meanGapCycles,
              appProfile("povray").value().meanGapCycles);
}

TEST(Profiles, HomogeneousReplicates)
{
    const WorkloadSpec w = homogeneous("mcf", 16);
    EXPECT_EQ(w.name, "mcf");
    ASSERT_EQ(w.coreParams.size(), 16u);
    for (const auto &p : w.coreParams)
        EXPECT_EQ(p.name, "mcf");
}

TEST(Profiles, MixHighDrawsOnlyFromSpecHigh)
{
    const WorkloadSpec w = mixHigh(16, 1);
    const auto apps = specHighApps();
    for (const auto &p : w.coreParams) {
        bool found = false;
        for (const auto &a : apps)
            found |= a == p.name;
        EXPECT_TRUE(found) << p.name;
    }
}

TEST(Profiles, MixBlendExcludesMultiThreaded)
{
    const WorkloadSpec w = mixBlend(16, 2);
    for (const auto &p : w.coreParams)
        for (const auto &mt : multiThreadedApps())
            EXPECT_NE(p.name, mt);
}

TEST(Profiles, NormalSuiteHasSixteenWorkloads)
{
    const auto suite = normalWorkloads(16);
    EXPECT_EQ(suite.size(), 9u + 2u + 5u);
    for (const auto &w : suite)
        EXPECT_EQ(w.coreParams.size(), 16u);
}

} // namespace
} // namespace workloads
} // namespace graphene
