/**
 * @file
 * Tests for trace capture, serialisation, and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/trace_io.hh"

namespace graphene {
namespace workloads {
namespace {

TEST(TraceIo, RoundTripRequestTrace)
{
    std::vector<TraceRecord> records = {
        {Cycle{100}, Addr{0xdeadc0}, false, 0},
        {Cycle{250}, Addr{0x123440}, true, 3},
        {Cycle{251}, Addr{0x0}, false, 15},
    };
    std::stringstream ss;
    writeTrace(ss, records);
    const auto parsed = readTrace(ss);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), records);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream ss(
        "# header\n\n10 0xff R 1\n# trailing comment\n20 0x40 W 2\n");
    const auto result = readTrace(ss);
    ASSERT_TRUE(result.ok());
    const auto &parsed = result.value();
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].issue, Cycle{10});
    EXPECT_EQ(parsed[0].addr, Addr{0xff});
    EXPECT_FALSE(parsed[0].isWrite);
    EXPECT_TRUE(parsed[1].isWrite);
}

TEST(TraceIo, MalformedLineIsTypedError)
{
    std::stringstream ss("10 0xff R 1\n10 0xff X 1\n");
    const auto result = readTrace(ss);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::Parse);
    // Line number and offending text both appear in the message.
    EXPECT_NE(result.error().message().find("line 2"),
              std::string::npos)
        << result.error().message();
    EXPECT_NE(result.error().message().find("10 0xff X 1"),
              std::string::npos)
        << result.error().message();
}

TEST(TraceIo, TrailingGarbageIsTypedError)
{
    std::stringstream ss("10 0xff R 1 junk\n");
    const auto result = readTrace(ss);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::Parse);
}

TEST(TraceIo, TruncatedFinalRecordIsTypedError)
{
    // No trailing newline: the last record may have been cut.
    std::stringstream ss("10 0xff R 1\n20 0x40 W");
    const auto result = readTrace(ss);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message().find("truncated"),
              std::string::npos)
        << result.error().message();
}

TEST(TraceIo, EmptyTraceIsTypedError)
{
    std::stringstream empty("");
    const auto none = readTrace(empty);
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.error().code(), ErrorCode::Parse);

    std::stringstream comments("# just\n# comments\n");
    const auto only_comments = readTrace(comments);
    ASSERT_FALSE(only_comments.ok());
    EXPECT_NE(only_comments.error().message().find("no records"),
              std::string::npos)
        << only_comments.error().message();
}

TEST(TraceIo, CaptureIsSortedAndDeterministic)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    const auto workload = homogeneous("mcf", 4);
    const auto a = captureTrace(workload, mapper, Cycle{100000}, 7);
    const auto b = captureTrace(workload, mapper, Cycle{100000}, 7);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 100u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].issue, a[i].issue);
    for (const auto &r : a)
        EXPECT_LT(r.coreId, 4u);
}

TEST(TraceIo, CaptureChangesWithSeed)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    const auto workload = homogeneous("mcf", 2);
    const auto a = captureTrace(workload, mapper, Cycle{50000}, 7);
    const auto b = captureTrace(workload, mapper, Cycle{50000}, 8);
    EXPECT_NE(a, b);
}

TEST(TraceIo, ActTraceRoundTrip)
{
    const std::vector<Row> rows = {Row{1}, Row{5}, Row{5},
                                   Row{65535}, Row{0}};
    std::stringstream ss;
    writeActTrace(ss, rows);
    const auto parsed = readActTrace(ss);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), rows);
}

TEST(TraceIo, ActTraceErrorsAreTyped)
{
    std::stringstream bad("12\nnotarow\n");
    const auto malformed = readActTrace(bad);
    ASSERT_FALSE(malformed.ok());
    EXPECT_EQ(malformed.error().code(), ErrorCode::Parse);
    EXPECT_NE(malformed.error().message().find("line 2"),
              std::string::npos)
        << malformed.error().message();
    EXPECT_NE(malformed.error().message().find("notarow"),
              std::string::npos)
        << malformed.error().message();

    std::stringstream truncated("12\n34");
    const auto cut = readActTrace(truncated);
    ASSERT_FALSE(cut.ok());
    EXPECT_NE(cut.error().message().find("truncated"),
              std::string::npos)
        << cut.error().message();

    std::stringstream empty("# nothing\n");
    EXPECT_FALSE(readActTrace(empty).ok());
}

TEST(TraceIo, TracePatternLoops)
{
    TracePattern p({Row{7}, Row{8}, Row{9}});
    EXPECT_EQ(p.next(), Row{7});
    EXPECT_EQ(p.next(), Row{8});
    EXPECT_EQ(p.next(), Row{9});
    EXPECT_EQ(p.next(), Row{7});
    EXPECT_EQ(p.name(), "trace-replay");
}

TEST(TraceIo, EmptyTracePatternIsFatal)
{
    EXPECT_DEATH(TracePattern({}), "empty");
}

TEST(ActTraceCursor, ChunksReassembleTheWholeFile)
{
    const std::vector<Row> rows = {Row{1}, Row{5}, Row{5},
                                   Row{65535}, Row{0}, Row{42},
                                   Row{7}};
    std::stringstream ss;
    writeActTrace(ss, rows);

    ActTraceCursor cursor(ss);
    std::vector<Row> got;
    for (;;) {
        const auto n = cursor.read(got, 3); // deliberately uneven
        ASSERT_TRUE(n.ok()) << n.error().describe();
        if (n.value() == 0)
            break;
    }
    EXPECT_EQ(got, rows);
    EXPECT_EQ(cursor.recordsRead(), rows.size());
    EXPECT_TRUE(cursor.atEnd());
    // Clean end is sticky: further reads keep returning 0.
    std::vector<Row> more;
    const auto again = cursor.read(more, 3);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), 0u);
}

TEST(ActTraceCursor, MatchesWholeFileReaderOnErrors)
{
    // The chunked path must type the exact same rejects as
    // readActTrace (which delegates here): malformed line, truncated
    // final record, empty trace.
    {
        std::stringstream bad("12\nnotarow\n");
        ActTraceCursor cursor(bad);
        std::vector<Row> got;
        auto n = cursor.read(got, 1); // first record is fine
        ASSERT_TRUE(n.ok());
        n = cursor.read(got, 1);
        ASSERT_FALSE(n.ok());
        EXPECT_EQ(n.error().code(), ErrorCode::Parse);
        EXPECT_NE(n.error().message().find("line 2"),
                  std::string::npos)
            << n.error().message();
    }
    {
        // EOF mid-record (no trailing newline): the chunked path
        // must not silently accept a tail the whole-file path
        // rejects.
        std::stringstream truncated("12\n34");
        ActTraceCursor cursor(truncated);
        std::vector<Row> got;
        Result<std::size_t> n = cursor.read(got, 8);
        if (n.ok()) // the cut may surface on the next read
            n = cursor.read(got, 8);
        ASSERT_FALSE(n.ok());
        EXPECT_EQ(n.error().code(), ErrorCode::Parse);
        EXPECT_NE(n.error().message().find("truncated"),
                  std::string::npos)
            << n.error().message();
    }
    {
        std::stringstream empty("# nothing here\n\n");
        ActTraceCursor cursor(empty);
        std::vector<Row> got;
        const auto n = cursor.read(got, 8);
        ASSERT_FALSE(n.ok());
        EXPECT_EQ(n.error().code(), ErrorCode::Parse);
    }
}

} // namespace
} // namespace workloads
} // namespace graphene
