/**
 * @file
 * Corpus test for the trace readers' typed-error contract: every file
 * under tests/data/corrupt_traces is malformed in a different way
 * (bad fields, trailing garbage, truncated final record, comment-only
 * or empty input, binary junk, negative rows), and both readTrace()
 * and readActTrace() must reject each with a typed error — never
 * crash, never silently return records. CI runs this corpus under
 * ASan as the injection smoke gate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "workloads/trace_io.hh"

namespace graphene {
namespace workloads {
namespace {

std::vector<std::filesystem::path>
corpusFiles()
{
    const std::filesystem::path dir =
        std::filesystem::path(GRAPHENE_TEST_DATA_DIR) /
        "corrupt_traces";
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file())
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(CorruptTraceCorpus, EveryFileYieldsTypedErrors)
{
    const auto files = corpusFiles();
    ASSERT_GE(files.size(), 5u) << "corpus went missing";

    for (const auto &path : files) {
        {
            std::ifstream is(path);
            ASSERT_TRUE(is) << path;
            const auto result = readTrace(is);
            EXPECT_FALSE(result.ok())
                << path << " parsed as a request trace";
            if (!result.ok()) {
                EXPECT_FALSE(result.error().message().empty());
                EXPECT_EQ(result.error().code(), ErrorCode::Parse)
                    << path;
            }
        }
        {
            std::ifstream is(path);
            ASSERT_TRUE(is) << path;
            const auto result = readActTrace(is);
            EXPECT_FALSE(result.ok())
                << path << " parsed as an ACT trace";
            if (!result.ok()) {
                EXPECT_EQ(result.error().code(), ErrorCode::Parse)
                    << path;
            }
        }
    }
}

} // namespace
} // namespace workloads
} // namespace graphene
