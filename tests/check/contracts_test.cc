/**
 * @file
 * Tests for the checked-contract framework: handler installation and
 * restoration, message formatting, macro firing semantics, and a real
 * in-tree precondition (the queued controller's sorted-input
 * requirement) tripping end to end.
 *
 * The suite is built in both contract modes: firing tests skip
 * themselves when contracts are compiled out, and the evaluation-count
 * test asserts the opposite guarantee (the condition never runs) in
 * that mode.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/contracts.hh"
#include "mem/queued_controller.hh"

namespace graphene {
namespace check {
namespace {

// The handler is a plain function pointer, so the capture state must
// be file-static.
ContractKind g_lastKind = ContractKind::Precondition;
std::string g_lastMessage;
unsigned g_hits = 0;

void
recordingHandler(ContractKind kind, const char *message)
{
    g_lastKind = kind;
    g_lastMessage = message;
    ++g_hits;
}

class RecordingHandler
{
  public:
    RecordingHandler()
    {
        g_hits = 0;
        g_lastMessage.clear();
        _previous = setContractHandler(recordingHandler);
    }

    ~RecordingHandler() { setContractHandler(_previous); }

  private:
    ContractHandler _previous;
};

#define REQUIRE_CONTRACTS()                                               \
    if (!kContractsEnabled)                                               \
    GTEST_SKIP() << "contracts compiled out in this build"

TEST(Contracts, KindNamesAreDistinct)
{
    const std::string expects =
        contractKindName(ContractKind::Precondition);
    const std::string ensures =
        contractKindName(ContractKind::Postcondition);
    const std::string invariant =
        contractKindName(ContractKind::Invariant);
    EXPECT_NE(expects, ensures);
    EXPECT_NE(ensures, invariant);
    EXPECT_NE(expects, invariant);
}

TEST(Contracts, HandlerReceivesFormattedMessage)
{
    RecordingHandler guard;
    failContract(ContractKind::Postcondition, "x > 0", "foo.cc", 42,
                 "saw %d", -7);
    EXPECT_EQ(g_hits, 1u);
    EXPECT_EQ(g_lastKind, ContractKind::Postcondition);
    EXPECT_NE(g_lastMessage.find("x > 0"), std::string::npos);
    EXPECT_NE(g_lastMessage.find("foo.cc:42"), std::string::npos);
    EXPECT_NE(g_lastMessage.find("saw -7"), std::string::npos);
}

TEST(Contracts, SetHandlerReturnsPrevious)
{
    ContractHandler previous = setContractHandler(recordingHandler);
    EXPECT_EQ(setContractHandler(previous), recordingHandler);
}

TEST(Contracts, MacroFiresOnlyOnFalseCondition)
{
    REQUIRE_CONTRACTS();
    RecordingHandler guard;
    const int v = 3;
    GRAPHENE_EXPECTS(v == 3, "cannot fire");
    GRAPHENE_ENSURES(v > 0);
    EXPECT_EQ(g_hits, 0u);

    GRAPHENE_INVARIANT(v == 4, "v was %d", v);
    EXPECT_EQ(g_hits, 1u);
    EXPECT_EQ(g_lastKind, ContractKind::Invariant);
    EXPECT_NE(g_lastMessage.find("v == 4"), std::string::npos);
    EXPECT_NE(g_lastMessage.find("v was 3"), std::string::npos);
}

TEST(Contracts, ConditionCostMatchesBuildMode)
{
    // Checked builds evaluate the condition exactly once; unchecked
    // builds must never execute it (the zero-cost guarantee).
    RecordingHandler guard;
    int evaluations = 0;
    GRAPHENE_EXPECTS(++evaluations > 0);
    EXPECT_EQ(evaluations, kContractsEnabled ? 1 : 0);
}

TEST(Contracts, QueuedControllerRejectsUnsortedRequests)
{
    REQUIRE_CONTRACTS();
    // A real in-tree precondition: run() requires requests sorted by
    // issue cycle. Feed it a swapped pair and count the violation.
    RecordingHandler guard;

    mem::ControllerConfig config;
    config.banksPerRank = 2;
    mem::QueuedChannelController controller(
        config, mem::SchedulerPolicy::Fcfs, 4);

    std::vector<mem::MemRequest> requests(2);
    requests[0].issue = Cycle{1000};
    requests[1].issue = Cycle{0}; // out of order
    const std::vector<unsigned> banks = {0, 1};
    const std::vector<Row> rows = {Row{10}, Row{20}};

    controller.run(requests, banks, rows);
    EXPECT_GE(g_hits, 1u);
    EXPECT_EQ(g_lastKind, ContractKind::Precondition);
    EXPECT_NE(g_lastMessage.find("out of order"), std::string::npos);
}

} // namespace
} // namespace check
} // namespace graphene
