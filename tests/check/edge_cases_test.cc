/**
 * @file
 * Edge-case tests at the boundaries the paper's guarantees pivot on:
 * an estimated count landing exactly on the tracking threshold T, an
 * ACT arriving exactly on the tREFW/k reset-boundary cycle, the
 * counter table's spillover-promotion path when every entry is
 * occupied, and row-id aliasing between per-bank scheme instances.
 */

#include <gtest/gtest.h>

#include "core/counter_table.hh"
#include "core/graphene.hh"

namespace graphene {
namespace core {
namespace {

GrapheneConfig
testConfig(std::uint64_t trh = 2000, unsigned k = 1)
{
    GrapheneConfig c;
    c.rowHammerThreshold = trh;
    c.resetWindowDivisor = k;
    return c;
}

// ---------------------------------------------------------------
// Count exactly at the tracking threshold T
// ---------------------------------------------------------------

TEST(EdgeCases, NrrFiresExactlyAtThresholdNotBefore)
{
    Graphene g(testConfig());
    const std::uint64_t t = g.trackingThreshold().value();
    RefreshAction action;

    for (std::uint64_t i = 1; i < t; ++i) {
        action.clear();
        g.onActivate(Cycle{i}, Row{7}, action);
        ASSERT_TRUE(action.empty())
            << "NRR before the threshold at count " << i;
    }
    ASSERT_EQ(g.table().estimatedCount(Row{7}).value(), t - 1);

    // The T-th activation lands the count exactly on T: the crossing
    // rule (count reaches a multiple of T) must fire here.
    action.clear();
    g.onActivate(Cycle{t}, Row{7}, action);
    ASSERT_EQ(action.nrrAggressors.size(), 1u);
    EXPECT_EQ(action.nrrAggressors[0], Row{7});

    // ...and the very next activation must not fire again.
    action.clear();
    g.onActivate(Cycle{t + 1}, Row{7}, action);
    EXPECT_TRUE(action.empty());
}

// ---------------------------------------------------------------
// ACT exactly on the tREFW/k reset-boundary cycle
// ---------------------------------------------------------------

TEST(EdgeCases, ActOnResetBoundaryCountsTowardTheNewWindow)
{
    const GrapheneConfig config = testConfig(2000, 2);
    Graphene g(config);
    const Cycle window = config.resetWindowCycles();
    RefreshAction action;

    // Park a near-threshold count in window 0.
    const std::uint64_t t = g.trackingThreshold().value();
    for (std::uint64_t i = 1; i < t; ++i)
        g.onActivate(Cycle{i}, Row{7}, action);
    ASSERT_EQ(g.resetCount(), 0u);
    ASSERT_EQ(g.table().estimatedCount(Row{7}).value(), t - 1);

    // Cycle `window` is the first cycle of window 1, not the last of
    // window 0: the table must reset before this ACT is counted, so
    // the near-threshold history cannot combine with it.
    action.clear();
    g.onActivate(window, Row{7}, action);
    EXPECT_EQ(g.resetCount(), 1u);
    EXPECT_TRUE(action.empty());
    EXPECT_EQ(g.table().estimatedCount(Row{7}).value(), 1u);
    EXPECT_EQ(g.table().streamLength().value(), 1u);
}

// ---------------------------------------------------------------
// Spillover promotion with a full table
// ---------------------------------------------------------------

TEST(EdgeCases, FullTablePromotesOnlyWhenMinEqualsSpillover)
{
    CounterTable table(2);
    table.processActivation(Row{100});
    table.processActivation(Row{100});
    table.processActivation(Row{200});
    table.processActivation(Row{200}); // counts {100:2, 200:2}, spill 0

    // Misses while min count > spillover are absorbed.
    CounterTable::Result r = table.processActivation(Row{300});
    EXPECT_TRUE(r.spilled);
    EXPECT_EQ(r.estimatedCount.value(), 0u);
    EXPECT_EQ(table.spilloverCount().value(), 1u);
    EXPECT_FALSE(table.contains(Row{300}));

    r = table.processActivation(Row{300});
    EXPECT_TRUE(r.spilled);
    EXPECT_EQ(table.spilloverCount().value(), 2u);

    // Now min count == spillover == 2: the next miss must promote,
    // inheriting the spillover count plus its own activation
    // (Lemma 1's carry-over).
    r = table.processActivation(Row{300});
    EXPECT_TRUE(r.inserted);
    EXPECT_FALSE(r.spilled);
    EXPECT_EQ(r.estimatedCount.value(), 3u);
    EXPECT_TRUE(table.contains(Row{300}));
    EXPECT_EQ(table.spilloverCount().value(), 2u);

    // Exactly one of the old entries was displaced.
    EXPECT_NE(table.contains(Row{100}), table.contains(Row{200}));
    EXPECT_EQ(table.occupied(), 2u);
    table.checkInvariants();
}

// ---------------------------------------------------------------
// Row-id aliasing across banks
// ---------------------------------------------------------------

TEST(EdgeCases, SameRowIdInDifferentBanksIsIndependent)
{
    // Graphene is instantiated per bank; the same row id hammered in
    // one bank must neither inflate the other bank's estimate nor
    // trigger its refresh logic.
    Graphene bank0(testConfig());
    Graphene bank1(testConfig());
    const std::uint64_t t = bank0.trackingThreshold().value();
    RefreshAction action;

    for (std::uint64_t i = 1; i <= t; ++i)
        bank0.onActivate(Cycle{i}, Row{42}, action);
    ASSERT_FALSE(action.empty());

    EXPECT_EQ(bank1.table().estimatedCount(Row{42}).value(), 0u);
    EXPECT_EQ(bank1.table().streamLength().value(), 0u);

    // One ACT in the other bank starts from a clean count: hammering
    // bank 0 bought the attacker nothing toward bank 1's threshold.
    action.clear();
    bank1.onActivate(Cycle{1}, Row{42}, action);
    EXPECT_TRUE(action.empty());
    EXPECT_EQ(bank1.table().estimatedCount(Row{42}).value(), 1u);
}

} // namespace
} // namespace core
} // namespace graphene
