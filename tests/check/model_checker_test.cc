/**
 * @file
 * Tests for the differential model-checker: every built-in tracker
 * passes the full campaign; a deliberately injected off-by-one in a
 * scratch Misra-Gries copy is caught; streams re-materialise
 * bit-exactly and round-trip through the ACT-trace replay format.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "check/model_checker.hh"
#include "core/tracker_misra_gries.hh"
#include "workloads/trace_io.hh"

namespace graphene {
namespace check {
namespace {

/** A campaign config small enough for a unit test but still sound:
 *  the checker derives Nentry from W/T per Inequality 1. */
ModelCheckConfig
smallConfig()
{
    ModelCheckConfig c;
    c.tableEntries = 8;
    c.threshold = 32;
    c.numRows = 512;
    c.streamLength = 5000;
    c.resetEvery = 2500;
    c.streamsPerFamily = 1;
    c.auditStride = 331;
    return c;
}

/**
 * A scratch Misra-Gries copy with an injected off-by-one: the
 * estimate handed to the refresh comparator is read *before* the
 * counter write-back, so every reported count lags the stored one by
 * one activation. The stored table stays internally consistent — only
 * the differential checker's policy replay can see the bug.
 */
class OffByOneReportTracker : public core::AggressorTracker
{
  public:
    explicit OffByOneReportTracker(unsigned entries) : _inner(entries)
    {
    }

    std::string name() const override { return "mg-off-by-one"; }

    ActCount
    processActivation(Row row) override
    {
        const ActCount after = _inner.processActivation(row);
        // BUG under test: report the pre-update count.
        return after == ActCount{0} ? ActCount{0}
                                    : ActCount{after.value() - 1};
    }

    ActCount
    estimatedCount(Row row) const override
    {
        return _inner.estimatedCount(row);
    }

    void reset() override { _inner.reset(); }

    TableCost
    cost(std::uint64_t rows_per_bank) const override
    {
        return _inner.cost(rows_per_bank);
    }

    double
    overestimateBound(ActCount stream_length) const override
    {
        return _inner.overestimateBound(stream_length);
    }

  private:
    core::MisraGriesTracker _inner;
};

TEST(ModelChecker, ProvidesAtLeastTenStreamFamilies)
{
    EXPECT_GE(standardFamilies().size(), 10u);
}

TEST(ModelChecker, AllBuiltInTrackersPassTheCampaign)
{
    ModelChecker checker(smallConfig());
    const ModelCheckReport report = checker.checkAll();
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.streams, standardFamilies().size() * 5u);
    EXPECT_GT(report.activations, 0u);
    EXPECT_GT(report.checks, report.activations);
}

TEST(ModelChecker, CatchesInjectedOffByOne)
{
    const ModelCheckConfig config = smallConfig();
    ModelChecker checker(config);
    const unsigned entries = static_cast<unsigned>(
        config.resetEvery / config.threshold + 1);

    // The same sizing with a correct table passes (see above); only
    // the injected bug separates the two runs.
    const ModelCheckReport report = checker.checkTracker(
        "mg-off-by-one",
        [&] {
            return std::make_unique<OffByOneReportTracker>(entries);
        },
        trackerKindProperties(core::TrackerKind::MisraGries));

    ASSERT_FALSE(report.ok());
    const Violation &v = report.violations.front();
    EXPECT_EQ(v.tracker, "mg-off-by-one");
    EXPECT_FALSE(v.family.empty());
    EXPECT_FALSE(v.property.empty());
    // The summary must carry the seed so the stream can be replayed.
    EXPECT_NE(report.summary().find("seed"), std::string::npos);
}

TEST(ModelChecker, StreamsRematerializeBitExactly)
{
    ModelChecker checker(smallConfig());
    const std::vector<StreamFamily> families = standardFamilies();
    const StreamFamily &family = families.front();
    const std::vector<Row> first =
        checker.materializeStream(family, 123);
    const std::vector<Row> second =
        checker.materializeStream(family, 123);
    EXPECT_EQ(first.size(), checker.config().streamLength);
    EXPECT_EQ(first, second);

    const std::vector<Row> other =
        checker.materializeStream(family, 124);
    EXPECT_NE(first, other);
}

TEST(ModelChecker, MaterializedStreamsRoundTripAsActTraces)
{
    // The replay path: a failing stream is written as an ACT trace
    // and fed back through workloads::TracePattern / sim::replay.
    ModelChecker checker(smallConfig());
    const std::vector<StreamFamily> families = standardFamilies();
    const StreamFamily &family = families.back();
    const std::vector<Row> rows =
        checker.materializeStream(family, 7);

    std::stringstream buffer;
    workloads::writeActTrace(buffer, rows);
    const auto parsed = workloads::readActTrace(buffer);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), rows);
}

TEST(ModelChecker, KindPropertiesMatchTheoreticalGuarantees)
{
    const TrackerProperties mg =
        trackerKindProperties(core::TrackerKind::MisraGries);
    EXPECT_TRUE(mg.deterministicBound);
    EXPECT_TRUE(mg.monotoneEstimates);

    const TrackerProperties lc =
        trackerKindProperties(core::TrackerKind::LossyCounting);
    EXPECT_TRUE(lc.deterministicBound);
    EXPECT_FALSE(lc.monotoneEstimates);

    const TrackerProperties cm =
        trackerKindProperties(core::TrackerKind::CountMin);
    EXPECT_FALSE(cm.deterministicBound);
    EXPECT_FALSE(cm.monotoneEstimates);
}

} // namespace
} // namespace check
} // namespace graphene
