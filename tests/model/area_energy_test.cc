/**
 * @file
 * Tests for the area and energy models against the paper's reported
 * constants (Tables IV and V, Sections V-B1/V-B2).
 */

#include <gtest/gtest.h>

#include "core/graphene.hh"
#include "model/area.hh"
#include "model/cam_timing.hh"
#include "model/energy.hh"
#include "schemes/factory.hh"

namespace graphene {
namespace model {
namespace {

TEST(Area, GrapheneRankAreaMatchesSynthesis)
{
    // 2,511 CAM bits x 16 banks should land on the paper's
    // 0.1456 mm^2 per rank (the calibration point).
    core::GrapheneConfig c;
    c.resetWindowDivisor = 2;
    const TableCost cost = core::Graphene::costFor(c, 65536, true);
    EXPECT_NEAR(AreaModel::mm2(cost, 16), 0.1456, 1e-6);
}

TEST(Area, SramSlightlyDenserThanCam)
{
    TableCost cam;
    cam.camBits = 1000;
    TableCost sram;
    sram.sramBits = 1000;
    EXPECT_GT(AreaModel::mm2(cam, 1), AreaModel::mm2(sram, 1));
    EXPECT_NEAR(AreaModel::mm2(cam, 1) / AreaModel::mm2(sram, 1),
                1.07, 1e-9);
}

TEST(Area, BitsAggregateOverBanks)
{
    TableCost cost;
    cost.camBits = 100;
    cost.sramBits = 50;
    EXPECT_EQ(AreaModel::bits(cost, 16), 150u * 16u);
}

TEST(Area, TableIVOrdering)
{
    // Graphene < CBT-128 < TWiCe in per-bank table bits.
    schemes::SchemeSpec spec;
    spec.kind = schemes::SchemeKind::Graphene;
    auto graphene = schemes::makeScheme(spec).value();
    spec.kind = schemes::SchemeKind::Cbt;
    auto cbt = schemes::makeScheme(spec).value();
    spec.kind = schemes::SchemeKind::TwiCe;
    auto twice = schemes::makeScheme(spec).value();

    const auto g = graphene->cost().totalBits();
    const auto c = cbt->cost().totalBits();
    const auto t = twice->cost().totalBits();
    EXPECT_EQ(g, 2511u);
    EXPECT_LT(g, c);
    EXPECT_LT(c, t);
    // "An order of magnitude smaller" than TWiCe.
    EXPECT_GT(t, 10u * g);
}

TEST(Energy, WorstCaseGrapheneOverheadIsPoint34Percent)
{
    // 324 victim rows per bank per tREFW (k = 2 worst case):
    // 324 x 11.49 nJ / 1.08e6 nJ = 0.345%.
    core::GrapheneConfig c;
    c.resetWindowDivisor = 2;
    const double overhead = EnergyModel::refreshOverhead(
        c.worstCaseVictimRowsPerRefw(), 1, 1.0);
    EXPECT_NEAR(overhead, 0.0034, 0.0002);
}

TEST(Energy, ParaConstantOverheadIsTwoPercent)
{
    // PARA-0.00145 at the max ACT rate refreshes p x W rows per
    // window: 1970 x 11.49 / 1.08e6 ~ 2.1% (Section V-B2).
    const double victim_rows = 0.00145 * 1358404.0;
    const double overhead = EnergyModel::refreshOverhead(
        static_cast<std::uint64_t>(victim_rows), 1, 1.0);
    EXPECT_NEAR(overhead, 0.021, 0.002);
}

TEST(Energy, TrackerDynamicEnergyNegligible)
{
    // Table V: 3.69e-3 nJ per ACT is 0.032% of one ACT+PRE.
    EXPECT_NEAR(EnergyModel::kGrapheneDynamicPerActNj /
                    EnergyModel::kActPreNj,
                0.00032, 0.00002);
    // Tracker energy per window (static + dynamic at max rate) stays
    // well below 1% of the bank's refresh energy.
    EXPECT_LT(EnergyModel::grapheneTrackerOverhead(1358404), 0.01);
}

TEST(Energy, OverheadScalesWithBanksAndWindows)
{
    const double one = EnergyModel::refreshOverhead(1000, 1, 1.0);
    EXPECT_NEAR(EnergyModel::refreshOverhead(1000, 2, 1.0), one / 2,
                1e-12);
    EXPECT_NEAR(EnergyModel::refreshOverhead(1000, 1, 4.0), one / 4,
                1e-12);
    EXPECT_NEAR(EnergyModel::refreshOverhead(2000, 1, 1.0), one * 2,
                1e-12);
}

TEST(CamTiming, UpdateHiddenWithinTrc)
{
    // Section IV-B's claim: the two-search-one-write pipeline fits
    // in tRC, for today's table and for the largest Figure 9
    // configuration (T_RH = 1.56K, ~2.6K entries).
    const auto timing = dram::TimingParams::ddr4_2400();
    EXPECT_TRUE(CamTimingModel::hiddenWithinTrc(timing, 81));
    EXPECT_TRUE(CamTimingModel::hiddenWithinTrc(timing, 2612));
    EXPECT_LT(CamTimingModel::criticalPathNs(81), 5.0);
}

TEST(CamTiming, SearchGrowsWeaklyWithDepth)
{
    const double small = CamTimingModel::searchNs(81);
    const double large = CamTimingModel::searchNs(81 * 32);
    EXPECT_GT(large, small);
    // 32x more entries must cost far less than 32x the latency.
    EXPECT_LT(large, 3.0 * small);
}

TEST(Area, Figure9aScalingAcrossThresholds)
{
    // Table bits grow ~linearly as T_RH shrinks, for all three
    // counter-based schemes, with TWiCe remaining the largest.
    std::uint64_t prev_g = 0, prev_t = 0, prev_c = 0;
    for (std::uint64_t trh : {50000ULL, 25000ULL, 12500ULL, 6250ULL}) {
        schemes::SchemeSpec spec;
        spec.rowHammerThreshold = trh;
        spec.kind = schemes::SchemeKind::Graphene;
        const auto g =
            schemes::makeScheme(spec).value()->cost().totalBits();
        spec.kind = schemes::SchemeKind::TwiCe;
        const auto t =
            schemes::makeScheme(spec).value()->cost().totalBits();
        spec.kind = schemes::SchemeKind::Cbt;
        const auto c =
            schemes::makeScheme(spec).value()->cost().totalBits();
        EXPECT_GT(g, prev_g);
        EXPECT_GT(t, prev_t);
        EXPECT_GT(c, prev_c);
        EXPECT_GT(t, 5 * g) << "trh " << trh;
        prev_g = g;
        prev_t = t;
        prev_c = c;
    }
}

} // namespace
} // namespace model
} // namespace graphene
