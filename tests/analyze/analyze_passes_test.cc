/**
 * @file
 * In-process drive of the graphene_analyze passes over the known-bad
 * fixture corpora (one per rule) plus the clean-tree acceptance
 * check: the real repository must analyze with zero errors. These
 * are the tests that prove CI *would* fail on an introduced layer
 * back-edge, include cycle, unhashed fingerprint field, discarded
 * Result, or uncovered entry point.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze.hh"

namespace {

namespace fs = std::filesystem;
using namespace graphene::analyze;
using graphene::toolscan::Finding;

fs::path
fixtureRoot(const std::string &name)
{
    return fs::path(GRAPHENE_ANALYZE_FIXTURES) / name;
}

/** Build a fixture corpus with its own local config files. */
Corpus
fixtureCorpus(const std::string &name)
{
    const fs::path root = fixtureRoot(name);
    return buildCorpus(root, root / "layers.toml",
                       root / "coverage_baseline.txt");
}

std::vector<Finding>
analyzeFixture(const std::string &name)
{
    return runPasses(fixtureCorpus(name), {});
}

bool
hasRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) { return f.rule == rule; });
}

TEST(AnalyzePasses, LayerBackEdgeIsAnError)
{
    const auto findings = analyzeFixture("layer_backedge");
    ASSERT_TRUE(hasRule(findings, "layer-dag"));
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "layer-dag"; });
    EXPECT_EQ(it->severity, "error");
    // The message must name both layers so the fix is obvious.
    EXPECT_NE(it->message.find("common"), std::string::npos);
    EXPECT_NE(it->message.find("sim"), std::string::npos);
}

TEST(AnalyzePasses, IncludeCycleIsAnError)
{
    const auto findings = analyzeFixture("include_cycle");
    ASSERT_TRUE(hasRule(findings, "include-cycle"));
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "include-cycle"; });
    EXPECT_EQ(it->severity, "error");
    // The full cycle path is spelled out.
    EXPECT_NE(it->message.find("a.hh"), std::string::npos);
    EXPECT_NE(it->message.find("b.hh"), std::string::npos);
}

TEST(AnalyzePasses, UnhashedFingerprintFieldIsAnError)
{
    const auto findings = analyzeFixture("fp_missing");
    ASSERT_TRUE(hasRule(findings, "fingerprint-completeness"));
    const auto it = std::find_if(findings.begin(), findings.end(),
                                 [](const Finding &f) {
                                     return f.rule ==
                                            "fingerprint-completeness";
                                 });
    EXPECT_EQ(it->severity, "error");
    // The forgotten field (and only that field) is named.
    EXPECT_NE(it->message.find("blastRadius"), std::string::npos);
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule ==
                                       "fingerprint-completeness";
                            }),
              1);
}

TEST(AnalyzePasses, DiscardedResultsAreErrors)
{
    const auto findings = analyzeFixture("result_discard");
    // Three discard shapes: bare statement, (void) cast, and
    // unwrapOrFatal outside a CLI/bench boundary.
    EXPECT_EQ(std::count_if(
                  findings.begin(), findings.end(),
                  [](const Finding &f) {
                      return f.rule == "result-discard" &&
                             f.severity == "error";
                  }),
              3);
}

TEST(AnalyzePasses, UncoveredEntryPointIsAnError)
{
    const auto findings = analyzeFixture("coverage_gap");
    ASSERT_TRUE(hasRule(findings, "coverage-audit"));
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "coverage-audit"; });
    // No baseline file in this fixture: the gap is new, hence fatal.
    EXPECT_EQ(it->severity, "error");
    EXPECT_NE(it->message.find("onActivate"), std::string::npos);
}

TEST(AnalyzePasses, CleanFixtureHasNoFindings)
{
    // Waivered field + contracted entry point: all passes quiet.
    EXPECT_TRUE(analyzeFixture("clean").empty());
}

TEST(AnalyzePasses, RealTreeAnalyzesWithoutErrors)
{
    const fs::path root(GRAPHENE_REPO_ROOT);
    const Corpus corpus =
        buildCorpus(root, root / "tools/analyze/layers.toml",
                    root / "tools/analyze/coverage_baseline.txt");
    ASSERT_GT(corpus.files.size(), 100u); // the whole tree, not a stub
    const auto findings = runPasses(corpus, {});
    for (const auto &f : findings)
        EXPECT_NE(f.severity, "error")
            << f.file << ":" << f.line << " [" << f.rule << "] "
            << f.message;
    EXPECT_EQ(graphene::toolscan::errorCount(findings), 0u);
}

TEST(AnalyzePasses, LayersConfigRejectsUndeclaredDep)
{
    // Referential integrity of the config itself: a dep naming a
    // layer that is never declared must be a parse error, or typos
    // would silently disable edges.
    const auto dir = fs::path(::testing::TempDir()) / "bad_layers";
    fs::create_directories(dir);
    const auto file = dir / "layers.toml";
    {
        std::ofstream out(file);
        out << "[layer.common]\n"
            << "paths = [\"src/common/\"]\n"
            << "deps = [\"does_not_exist\"]\n";
    }
    LayerConfig config;
    std::string error;
    EXPECT_FALSE(parseLayersFile(file, config, error));
    EXPECT_NE(error.find("does_not_exist"), std::string::npos);
}

} // namespace
