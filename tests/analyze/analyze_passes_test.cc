/**
 * @file
 * In-process drive of the graphene_analyze passes over the known-bad
 * fixture corpora (one per rule) plus the clean-tree acceptance
 * check: the real repository must analyze with zero errors. These
 * are the tests that prove CI *would* fail on an introduced layer
 * back-edge, include cycle, unhashed fingerprint field, discarded
 * Result, or uncovered entry point.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze.hh"

namespace {

namespace fs = std::filesystem;
using namespace graphene::analyze;
using graphene::toolscan::Finding;

fs::path
fixtureRoot(const std::string &name)
{
    return fs::path(GRAPHENE_ANALYZE_FIXTURES) / name;
}

/** Build a fixture corpus with its own local config files. */
Corpus
fixtureCorpus(const std::string &name)
{
    const fs::path root = fixtureRoot(name);
    return buildCorpus(root, root / "layers.toml",
                       root / "coverage_baseline.txt");
}

std::vector<Finding>
analyzeFixture(const std::string &name)
{
    return runPasses(fixtureCorpus(name), {});
}

/** Same for the perf-debt corpora (hotpaths.toml per fixture). */
std::vector<Finding>
analyzePerfFixture(const std::string &name)
{
    const fs::path root =
        fs::path(GRAPHENE_ANALYZE_PERF_FIXTURES) / name;
    return runPasses(buildCorpus(root, root / "layers.toml",
                                 root / "coverage_baseline.txt",
                                 root / "hotpaths.toml",
                                 root / "perf_baseline.txt"),
                     {});
}

bool
hasRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) { return f.rule == rule; });
}

TEST(AnalyzePasses, LayerBackEdgeIsAnError)
{
    const auto findings = analyzeFixture("layer_backedge");
    ASSERT_TRUE(hasRule(findings, "layer-dag"));
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "layer-dag"; });
    EXPECT_EQ(it->severity, "error");
    // The message must name both layers so the fix is obvious.
    EXPECT_NE(it->message.find("common"), std::string::npos);
    EXPECT_NE(it->message.find("sim"), std::string::npos);
}

TEST(AnalyzePasses, IncludeCycleIsAnError)
{
    const auto findings = analyzeFixture("include_cycle");
    ASSERT_TRUE(hasRule(findings, "include-cycle"));
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "include-cycle"; });
    EXPECT_EQ(it->severity, "error");
    // The full cycle path is spelled out.
    EXPECT_NE(it->message.find("a.hh"), std::string::npos);
    EXPECT_NE(it->message.find("b.hh"), std::string::npos);
}

TEST(AnalyzePasses, UnhashedFingerprintFieldIsAnError)
{
    const auto findings = analyzeFixture("fp_missing");
    ASSERT_TRUE(hasRule(findings, "fingerprint-completeness"));
    const auto it = std::find_if(findings.begin(), findings.end(),
                                 [](const Finding &f) {
                                     return f.rule ==
                                            "fingerprint-completeness";
                                 });
    EXPECT_EQ(it->severity, "error");
    // The forgotten field (and only that field) is named.
    EXPECT_NE(it->message.find("blastRadius"), std::string::npos);
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule ==
                                       "fingerprint-completeness";
                            }),
              1);
}

TEST(AnalyzePasses, DiscardedResultsAreErrors)
{
    const auto findings = analyzeFixture("result_discard");
    // Three discard shapes: bare statement, (void) cast, and
    // unwrapOrFatal outside a CLI/bench boundary.
    EXPECT_EQ(std::count_if(
                  findings.begin(), findings.end(),
                  [](const Finding &f) {
                      return f.rule == "result-discard" &&
                             f.severity == "error";
                  }),
              3);
}

TEST(AnalyzePasses, UncoveredEntryPointIsAnError)
{
    const auto findings = analyzeFixture("coverage_gap");
    ASSERT_TRUE(hasRule(findings, "coverage-audit"));
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "coverage-audit"; });
    // No baseline file in this fixture: the gap is new, hence fatal.
    EXPECT_EQ(it->severity, "error");
    EXPECT_NE(it->message.find("onActivate"), std::string::npos);
}

TEST(AnalyzePasses, CleanFixtureHasNoFindings)
{
    // Waivered field + contracted entry point: all passes quiet.
    EXPECT_TRUE(analyzeFixture("clean").empty());
}

TEST(CkptPass, ForgottenMembersAndOneSidedPairsAreErrors)
{
    const auto findings = analyzeFixture("ckpt_missing");
    std::vector<Finding> ckpt;
    std::copy_if(findings.begin(), findings.end(),
                 std::back_inserter(ckpt), [](const Finding &f) {
                     return f.rule == "ckpt-completeness";
                 });
    // _spills (restore side), _epoch (both sides), and the
    // one-sided WriteOnly pair; _acts is covered and silent.
    ASSERT_EQ(ckpt.size(), 3u);
    const auto messageWith = [&](const std::string &needle) {
        return std::any_of(ckpt.begin(), ckpt.end(),
                           [&](const Finding &f) {
                               return f.severity == "error" &&
                                      f.message.find(needle) !=
                                          std::string::npos;
                           });
    };
    EXPECT_TRUE(messageWith("'_spills'"));
    EXPECT_TRUE(messageWith("'_epoch'"));
    EXPECT_TRUE(messageWith("no matching restoreState"));
    EXPECT_FALSE(messageWith("'_acts'"));
}

TEST(CkptPass, WaiversAndDelegationStaySilent)
{
    // Serialized members, saveState-recursion delegation, and all
    // three waiver placements (same line, line above, in-function):
    // the corpus must come back clean.
    EXPECT_TRUE(analyzeFixture("ckpt_waived").empty());
}

TEST(CkptPass, RealTreeCheckpointPairsAreComplete)
{
    // The shipped checkpoint protocol (DESIGN.md §14): every
    // saveState/restoreState pair in src/ round-trips every member
    // or waives it with a rationale.
    const fs::path root = GRAPHENE_REPO_ROOT;
    const Corpus corpus =
        buildCorpus(root, root / "tools/analyze/layers.toml",
                    root / "tools/analyze/coverage_baseline.txt");
    std::vector<Finding> findings;
    runCkptPass(corpus, findings);
    for (const Finding &f : findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": "
                      << f.message;
    // The pass must actually be auditing the tree, not silently
    // matching nothing: the engine's checkpoint pair is the anchor.
    EXPECT_TRUE(corpus.byRel.count("src/sim/act_engine.cc"));
}

TEST(PerfPass, AllocationInHotRegionIsAnError)
{
    const auto findings = analyzePerfFixture("alloc_in_hot");
    // Both the direct make_unique in tick() and the unreserved
    // push_back in the transitively-hot record() must fire.
    const auto count = std::count_if(
        findings.begin(), findings.end(), [](const Finding &f) {
            return f.rule == "perf-alloc" && f.severity == "error";
        });
    EXPECT_GE(count, 2);
    // The finding names the hot function and its root provenance.
    const auto it = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "perf-alloc"; });
    ASSERT_NE(it, findings.end());
    EXPECT_NE(it->message.find("hot via 'tick'"), std::string::npos);
}

TEST(PerfPass, HashContainerTouchInHotRegionIsAnError)
{
    const auto findings = analyzePerfFixture("hash_in_hot");
    const auto it = std::find_if(findings.begin(), findings.end(),
                                 [](const Finding &f) {
                                     return f.rule ==
                                            "perf-hash-container";
                                 });
    ASSERT_NE(it, findings.end());
    EXPECT_EQ(it->severity, "error");
    // The message points back at the declaring container.
    EXPECT_NE(it->message.find("unordered_map"), std::string::npos);
    EXPECT_NE(it->message.find("_counts"), std::string::npos);
}

TEST(PerfPass, VirtualDispatchInHotRegionIsAnError)
{
    const auto findings = analyzePerfFixture("virtual_in_hot");
    const auto it = std::find_if(findings.begin(), findings.end(),
                                 [](const Finding &f) {
                                     return f.rule ==
                                            "perf-virtual-call";
                                 });
    ASSERT_NE(it, findings.end());
    EXPECT_EQ(it->severity, "error");
    EXPECT_NE(it->message.find("hook->onTick"), std::string::npos);
}

TEST(PerfPass, LargeByValueParameterIsAnError)
{
    const auto findings = analyzePerfFixture("copy_in_hot");
    const auto it = std::find_if(findings.begin(), findings.end(),
                                 [](const Finding &f) {
                                     return f.rule ==
                                            "perf-large-copy";
                                 });
    ASSERT_NE(it, findings.end());
    EXPECT_EQ(it->severity, "error");
    EXPECT_NE(it->message.find("Request"), std::string::npos);
    EXPECT_NE(it->message.find("by value"), std::string::npos);
}

TEST(PerfPass, IoAndThrowInHotRegionAreErrors)
{
    const auto findings = analyzePerfFixture("io_in_hot");
    // Both the throw and the std::cout must fire.
    EXPECT_GE(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == "perf-io-hot" &&
                                       f.severity == "error";
                            }),
              2);
}

TEST(PerfPass, ColdPathDebtStaysSilent)
{
    // setup() allocates but is unreachable from the declared root,
    // so the corpus analyzes clean.
    EXPECT_TRUE(analyzePerfFixture("cold_path").empty());
}

TEST(PerfPass, InlineWaiversSilenceSiteAndFunction)
{
    EXPECT_TRUE(analyzePerfFixture("waived").empty());
}

TEST(PerfPass, ScannerEdgeCasesDoNotFabricateFindings)
{
    // Comment/raw-string/#if-0 decoys around one real allocation in
    // an out-of-line member definition: exactly one finding.
    const auto findings = analyzePerfFixture("scanner_edges");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "perf-alloc");
    EXPECT_EQ(findings[0].severity, "error");
    EXPECT_NE(findings[0].message.find("Engine::tick"),
              std::string::npos);
}

TEST(PerfPass, BaselinedSiteWarnsAndStaleEntryErrors)
{
    const auto findings = analyzePerfFixture("stale_baseline");
    // The live baselined site downgrades to a warning...
    const auto live = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "perf-alloc"; });
    ASSERT_NE(live, findings.end());
    EXPECT_EQ(live->severity, "warning");
    // ...and the entry matching nothing is a hard error naming the
    // vanished key.
    const auto stale = std::find_if(
        findings.begin(), findings.end(),
        [](const Finding &f) { return f.rule == "stale-baseline"; });
    ASSERT_NE(stale, findings.end());
    EXPECT_EQ(stale->severity, "error");
    EXPECT_NE(stale->message.find("vanished"), std::string::npos);
}

TEST(PerfPass, MalformedHotpathsConfigIsALoudError)
{
    const auto findings = analyzePerfFixture("bad_config");
    const auto it = std::find_if(findings.begin(), findings.end(),
                                 [](const Finding &f) {
                                     return f.rule ==
                                            "hotpaths-config";
                                 });
    ASSERT_NE(it, findings.end());
    EXPECT_EQ(it->severity, "error");
}

TEST(PerfPass, RealTreeHotRegionCoversEverySchemeOnActivate)
{
    // The committed hotpaths.toml must put each scheme's onActivate
    // in the hot region — the audit is meaningless if a scheme
    // escapes it.
    const fs::path root(GRAPHENE_REPO_ROOT);
    const Corpus corpus = buildCorpus(
        root, root / "tools/analyze/layers.toml",
        root / "tools/analyze/coverage_baseline.txt",
        root / "tools/analyze/hotpaths.toml",
        root / "tools/analyze/perf_baseline.txt");
    HotConfig config;
    std::string error;
    ASSERT_TRUE(
        parseHotpathsFile(corpus.hotpathsFile, config, error))
        << error;
    std::set<std::string> hot_files;
    for (const auto &hf : computeHotRegion(corpus, config))
        if (graphene::toolscan::unqualifiedName(hf.def.name) ==
            "onActivate")
            hot_files.insert(corpus.files[hf.fileIndex].rel);
    for (const char *impl :
         {"src/core/graphene.cc", "src/core/tracker_scheme.cc",
          "src/schemes/para.cc", "src/schemes/twice.cc",
          "src/schemes/cbt.cc", "src/schemes/prohit.cc",
          "src/schemes/mrloc.cc"})
        EXPECT_TRUE(hot_files.count(impl)) << impl;
}

TEST(AnalyzePasses, RealTreeAnalyzesWithoutErrors)
{
    const fs::path root(GRAPHENE_REPO_ROOT);
    const Corpus corpus = buildCorpus(
        root, root / "tools/analyze/layers.toml",
        root / "tools/analyze/coverage_baseline.txt",
        root / "tools/analyze/hotpaths.toml",
        root / "tools/analyze/perf_baseline.txt");
    ASSERT_GT(corpus.files.size(), 100u); // the whole tree, not a stub
    const auto findings = runPasses(corpus, {});
    for (const auto &f : findings)
        EXPECT_NE(f.severity, "error")
            << f.file << ":" << f.line << " [" << f.rule << "] "
            << f.message;
    EXPECT_EQ(graphene::toolscan::errorCount(findings), 0u);
}

TEST(AnalyzePasses, LayersConfigRejectsUndeclaredDep)
{
    // Referential integrity of the config itself: a dep naming a
    // layer that is never declared must be a parse error, or typos
    // would silently disable edges.
    const auto dir = fs::path(::testing::TempDir()) / "bad_layers";
    fs::create_directories(dir);
    const auto file = dir / "layers.toml";
    {
        std::ofstream out(file);
        out << "[layer.common]\n"
            << "paths = [\"src/common/\"]\n"
            << "deps = [\"does_not_exist\"]\n";
    }
    LayerConfig config;
    std::string error;
    EXPECT_FALSE(parseLayersFile(file, config, error));
    EXPECT_NE(error.find("does_not_exist"), std::string::npos);
}

} // namespace
