/**
 * @file
 * Executable demonstration of the cache-aliasing failure mode the
 * fingerprint-completeness pass exists to prevent — the same bug the
 * `fp_missing` fixture encodes statically (a SweepSpec whose adder
 * forgets `blastRadius`), run for real against exp::Cache.
 *
 * With the buggy adder, two sweeps that differ only in the forgotten
 * field hash to the same digest, so they share a cache address: the
 * second sweep *loads the first sweep's results* and reports them as
 * its own. No error, no warning — silently wrong science. The
 * complete adder re-addresses the entry and the second sweep
 * correctly misses.
 */

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "exp/cache.hh"
#include "exp/cell.hh"
#include "exp/fingerprint.hh"

namespace {

using namespace graphene;
using exp::Cache;
using exp::CellKey;
using exp::CellResult;
using exp::Fingerprint;

/** The fp_missing fixture's spec, as a live struct. */
struct SweepSpec
{
    std::uint64_t threshold = 0;
    std::uint64_t seed = 0;
    std::uint64_t blastRadius = 1;
};

/** The buggy adder: forgets blastRadius — exactly what the
 *  fingerprint-completeness pass flags as an error. */
void
addSweepFieldsBuggy(Fingerprint &fp, const SweepSpec &spec)
{
    fp.field("threshold", spec.threshold);
    fp.field("seed", spec.seed);
}

/** The complete adder: every field feeds the digest. */
void
addSweepFieldsFixed(Fingerprint &fp, const SweepSpec &spec)
{
    fp.field("threshold", spec.threshold);
    fp.field("seed", spec.seed);
    fp.field("blastRadius", spec.blastRadius);
}

template <typename Adder>
CellKey
keyOf(const SweepSpec &spec, Adder add, const char *label)
{
    Fingerprint fp;
    add(fp, spec);
    CellKey key;
    key.experiment = "aliasing-demo";
    key.workload = label;
    key.scheme = "Graphene";
    key.fingerprint = fp.digest();
    return key;
}

std::string
freshDir(const char *name)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    return dir.string();
}

TEST(FingerprintAliasing, UnhashedFieldServesStaleResults)
{
    SweepSpec near;
    near.threshold = 50000;
    near.seed = 7;
    near.blastRadius = 1;

    SweepSpec wide = near;
    wide.blastRadius = 4; // a *different* experiment

    const Cache cache(freshDir("fp_aliasing_buggy"));

    // Run the blast-radius-1 sweep; cache its (fabricated) result.
    CellResult r1;
    r1.stats.acts = 111111;
    r1.stats.bitFlips = 0;
    const CellKey k1 = keyOf(near, addSweepFieldsBuggy, "br1");
    cache.store(k1, r1);

    // The blast-radius-4 sweep differs only in the forgotten field:
    // same digest, same cache address.
    const CellKey k4 = keyOf(wide, addSweepFieldsBuggy, "br4");
    ASSERT_EQ(k1.fingerprint, k4.fingerprint);

    // ...so the lookup HITS and hands back the br=1 results as if
    // they were the br=4 results. This is the silent-staleness bug.
    const std::optional<CellResult> stale = cache.load(k4);
    ASSERT_TRUE(stale.has_value());
    EXPECT_EQ(stale->stats.acts, r1.stats.acts);
}

TEST(FingerprintAliasing, CompleteAdderReAddressesTheEntry)
{
    SweepSpec near;
    near.threshold = 50000;
    near.seed = 7;
    near.blastRadius = 1;

    SweepSpec wide = near;
    wide.blastRadius = 4;

    const Cache cache(freshDir("fp_aliasing_fixed"));

    CellResult r1;
    r1.stats.acts = 111111;
    cache.store(keyOf(near, addSweepFieldsFixed, "br1"), r1);

    // With every field hashed the two sweeps have distinct digests
    // and distinct cache addresses: the second sweep misses and is
    // recomputed instead of inheriting stale numbers.
    const CellKey k4 = keyOf(wide, addSweepFieldsFixed, "br4");
    EXPECT_NE(keyOf(near, addSweepFieldsFixed, "br1").fingerprint,
              k4.fingerprint);
    EXPECT_FALSE(cache.load(k4).has_value());
}

} // namespace
