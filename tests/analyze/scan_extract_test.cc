/**
 * @file
 * Unit tests for the toolscan extraction layer feeding the
 * call-graph-aware perf-debt pass: comment/raw-string/#if-0
 * stripping, function-definition scanning (free, member, out-of-line
 * qualified), and call-site extraction with receiver classification.
 * These pin down the edge cases the scanner_edges fixture exercises
 * end-to-end.
 */

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/scan.hh"

namespace {

using graphene::toolscan::CallSite;
using graphene::toolscan::scanCalls;
using graphene::toolscan::scanFunctions;
using graphene::toolscan::ScannedFunction;
using graphene::toolscan::stripLines;
using graphene::toolscan::unqualifiedName;

std::string
join(const std::vector<std::string> &lines)
{
    return std::accumulate(lines.begin(), lines.end(), std::string(),
                           [](std::string acc, const std::string &l) {
                               acc += l;
                               acc += '\n';
                               return acc;
                           });
}

std::string
stripped(const std::string &text)
{
    return join(stripLines(text));
}

const ScannedFunction *
findFunction(const std::vector<ScannedFunction> &defs,
             const std::string &name)
{
    const auto it = std::find_if(
        defs.begin(), defs.end(),
        [&](const ScannedFunction &f) { return f.name == name; });
    return it == defs.end() ? nullptr : &*it;
}

TEST(StripLines, BlockCommentsNeverLeakCode)
{
    const std::string out = stripped("int a;\n"
                                     "/* auto p = new int(7);\n"
                                     "   x.push_back(1); */\n"
                                     "int b;\n");
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("push_back"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
    // Line structure is preserved for lineOf() mapping.
    EXPECT_EQ(stripLines("a\n/*\n\n*/\nb\n").size(), 5u);
}

TEST(StripLines, RawStringContentsAreRemoved)
{
    const std::string out = stripped(
        "const char *s = R\"doc(new int(7); x->f();)doc\";\n"
        "int after;\n");
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("->f"), std::string::npos);
    EXPECT_NE(out.find("int after;"), std::string::npos);
}

TEST(StripLines, MultiLineRawStringPreservesLineCount)
{
    const std::vector<std::string> out = stripLines(
        "auto s = R\"(line one\nnew int(2);\nline three)\";\nint z;\n");
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(join(out).find("new"), std::string::npos);
    EXPECT_EQ(out[3], "int z;");
}

TEST(StripLines, RawPrefixInsideIdentifierIsNotARawString)
{
    // FooR"..." must not trigger: 'R' here ends an identifier.
    const std::string out = stripped("int FooR = 1; f(\"new\");\n");
    EXPECT_NE(out.find("FooR"), std::string::npos);
    // The ordinary literal's contents are still stripped.
    EXPECT_EQ(out.find("new"), std::string::npos);
}

TEST(StripLines, IfZeroRegionsAreDisabled)
{
    const std::string out = stripped("int live;\n"
                                     "#if 0\n"
                                     "auto p = new int(7);\n"
                                     "#endif\n"
                                     "int tail;\n");
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_NE(out.find("int live;"), std::string::npos);
    EXPECT_NE(out.find("int tail;"), std::string::npos);
}

TEST(StripLines, IfZeroElseBranchStaysLive)
{
    const std::string out = stripped("#if 0\n"
                                     "int dead;\n"
                                     "#else\n"
                                     "int alive;\n"
                                     "#endif\n");
    EXPECT_EQ(out.find("int dead;"), std::string::npos);
    EXPECT_NE(out.find("int alive;"), std::string::npos);
}

TEST(StripLines, NestedIfInsideDisabledRegionStaysDead)
{
    const std::string out = stripped("#if 0\n"
                                     "#ifdef FOO\n"
                                     "int dead;\n"
                                     "#endif\n"
                                     "int still_dead;\n"
                                     "#endif\n"
                                     "int live;\n");
    EXPECT_EQ(out.find("dead"), std::string::npos);
    EXPECT_NE(out.find("int live;"), std::string::npos);
}

TEST(ScanFunctions, FreeAndOutOfLineMemberDefinitions)
{
    const std::string text = stripped("int tick(int id)\n"
                                      "{\n"
                                      "    return id;\n"
                                      "}\n"
                                      "int Engine::tick(int id)\n"
                                      "{\n"
                                      "    return id + 1;\n"
                                      "}\n");
    const auto defs = scanFunctions(text);
    ASSERT_EQ(defs.size(), 2u);
    EXPECT_NE(findFunction(defs, "tick"), nullptr);
    const ScannedFunction *member = findFunction(defs, "Engine::tick");
    ASSERT_NE(member, nullptr);
    EXPECT_EQ(unqualifiedName(member->name), "tick");
    EXPECT_EQ(member->params, "int id");
    // Body offsets bracket the member body, not the free function's.
    const std::string body = text.substr(
        member->bodyBegin, member->bodyEnd - member->bodyBegin);
    EXPECT_NE(body.find("id + 1"), std::string::npos);
}

TEST(ScanFunctions, ControlKeywordsAreNotDefinitions)
{
    const std::string text = stripped("void f()\n"
                                      "{\n"
                                      "    if (x) {\n"
                                      "    }\n"
                                      "    while (y) {\n"
                                      "    }\n"
                                      "    switch (z) {\n"
                                      "    }\n"
                                      "}\n");
    const auto defs = scanFunctions(text);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0].name, "f");
}

TEST(ScanFunctions, ConstAndOverrideQualifiersAccepted)
{
    const std::string text =
        stripped("int Engine::count() const\n"
                 "{\n"
                 "    return 0;\n"
                 "}\n"
                 "void Engine::run() noexcept\n"
                 "{\n"
                 "}\n");
    const auto defs = scanFunctions(text);
    EXPECT_NE(findFunction(defs, "Engine::count"), nullptr);
    EXPECT_NE(findFunction(defs, "Engine::run"), nullptr);
}

TEST(ScanCalls, ReceiversAndDispatchKind)
{
    const std::string text = stripped("void f()\n"
                                      "{\n"
                                      "    helper(1);\n"
                                      "    obj.method(2);\n"
                                      "    ptr->update(3);\n"
                                      "    this->local(4);\n"
                                      "}\n");
    const auto defs = scanFunctions(text);
    ASSERT_EQ(defs.size(), 1u);
    const auto calls =
        scanCalls(text, defs[0].bodyBegin, defs[0].bodyEnd);
    ASSERT_EQ(calls.size(), 4u);

    const auto byName = [&](const std::string &n) -> const CallSite * {
        const auto it = std::find_if(
            calls.begin(), calls.end(),
            [&](const CallSite &c) { return c.name == n; });
        return it == calls.end() ? nullptr : &*it;
    };
    const CallSite *helper = byName("helper");
    ASSERT_NE(helper, nullptr);
    EXPECT_FALSE(helper->arrow);
    EXPECT_FALSE(helper->dot);

    const CallSite *method = byName("method");
    ASSERT_NE(method, nullptr);
    EXPECT_TRUE(method->dot);
    EXPECT_EQ(method->receiver, "obj");

    const CallSite *update = byName("update");
    ASSERT_NE(update, nullptr);
    EXPECT_TRUE(update->arrow);
    EXPECT_EQ(update->receiver, "ptr");

    const CallSite *local = byName("local");
    ASSERT_NE(local, nullptr);
    EXPECT_TRUE(local->arrow);
    EXPECT_EQ(local->receiver, "this");
}

TEST(ScanCalls, KeywordsAndOperatorsAreNotCalls)
{
    const std::string text =
        stripped("void f()\n"
                 "{\n"
                 "    if (a) {\n"
                 "    }\n"
                 "    return g(sizeof(int));\n"
                 "}\n");
    const auto defs = scanFunctions(text);
    ASSERT_EQ(defs.size(), 1u);
    const auto calls =
        scanCalls(text, defs[0].bodyBegin, defs[0].bodyEnd);
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].name, "g");
}

} // namespace
