/**
 * @file
 * Tests for the checkpoint container: encode/decode round-trip, the
 * fixed validation order mapping each corruption class to its own
 * ErrorCode, and the atomic file path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ckpt/checkpoint.hh"

namespace graphene {
namespace ckpt {
namespace {

std::vector<std::uint8_t>
samplePayload()
{
    std::vector<std::uint8_t> p;
    for (int i = 0; i < 64; ++i)
        p.push_back(static_cast<std::uint8_t>(i * 7));
    return p;
}

constexpr std::uint64_t kFp = 0x1122334455667788ULL;

TEST(Checkpoint, RoundTrip)
{
    const auto bytes = encode(kFp, samplePayload());
    const auto blob = decode(bytes, kFp);
    ASSERT_TRUE(blob.ok()) << blob.error().describe();
    EXPECT_EQ(blob.value().version, kFormatVersion);
    EXPECT_EQ(blob.value().configFingerprint, kFp);
    EXPECT_EQ(blob.value().payload, samplePayload());
}

TEST(Checkpoint, AnyProducerAcceptedWithoutExpectedFingerprint)
{
    const auto bytes = encode(kFp, samplePayload());
    EXPECT_TRUE(decode(bytes, std::nullopt).ok());
}

TEST(Checkpoint, TruncationBelowHeaderIsTyped)
{
    auto bytes = encode(kFp, samplePayload());
    bytes.resize(kHeaderSize - 1);
    const auto blob = decode(bytes, kFp);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptTruncated);
}

TEST(Checkpoint, TruncatedPayloadIsTyped)
{
    auto bytes = encode(kFp, samplePayload());
    bytes.resize(bytes.size() - 5);
    const auto blob = decode(bytes, kFp);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptTruncated);
}

TEST(Checkpoint, BadMagicIsTyped)
{
    auto bytes = encode(kFp, samplePayload());
    bytes[0] ^= 0x01;
    const auto blob = decode(bytes, kFp);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptBadHeader);
}

TEST(Checkpoint, HeaderBitflipIsTyped)
{
    auto bytes = encode(kFp, samplePayload());
    bytes[9] ^= 0x40; // inside the config fingerprint field
    const auto blob = decode(bytes, kFp);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptBadHeader);
}

TEST(Checkpoint, PayloadBitflipIsTyped)
{
    auto bytes = encode(kFp, samplePayload());
    bytes[kHeaderSize + 3] ^= 0x40;
    const auto blob = decode(bytes, kFp);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptBadPayload);
}

TEST(Checkpoint, TrailingGarbageIsTyped)
{
    auto bytes = encode(kFp, samplePayload());
    bytes.push_back(0xde);
    const auto blob = decode(bytes, kFp);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptBadPayload);
}

TEST(Checkpoint, ConfigMismatchIsTyped)
{
    const auto bytes = encode(kFp, samplePayload());
    const auto blob = decode(bytes, kFp + 1);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::CkptConfigMismatch);
}

TEST(Checkpoint, SaveLoadFileRoundTrips)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "graphene_ckpt_test";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "round_trip.gckp").string();

    ASSERT_TRUE(saveFile(path, kFp, samplePayload()).ok());
    const auto blob = loadFile(path, kFp);
    ASSERT_TRUE(blob.ok()) << blob.error().describe();
    EXPECT_EQ(blob.value().payload, samplePayload());

    // Atomic discipline: no tmp siblings survive a successful save.
    unsigned siblings = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().find("round_trip") == 0)
            ++siblings;
    EXPECT_EQ(siblings, 1u) << "tmp file left behind";

    // Overwrite in place keeps the artifact valid.
    auto other = samplePayload();
    other.push_back(0x5a);
    ASSERT_TRUE(saveFile(path, kFp, other).ok());
    const auto blob2 = loadFile(path, kFp);
    ASSERT_TRUE(blob2.ok());
    EXPECT_EQ(blob2.value().payload, other);

    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, LoadMissingFileIsIoError)
{
    const auto blob =
        loadFile("/nonexistent/graphene/ckpt.gckp", std::nullopt);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code(), ErrorCode::Io);
}

TEST(Checkpoint, SaveIntoMissingDirectoryIsIoError)
{
    const auto r = atomicWriteFile(
        "/nonexistent/graphene/dir/ckpt.gckp", samplePayload());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Io);
}

} // namespace
} // namespace ckpt
} // namespace graphene
