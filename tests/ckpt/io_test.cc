/**
 * @file
 * Tests for the checkpoint serialization primitives: round-trips for
 * every encoded type, the sticky-failure bounds contract, and the
 * finish() terminal check.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ckpt/io.hh"

namespace graphene {
namespace ckpt {
namespace {

TEST(CkptIo, RoundTripsEveryType)
{
    Writer w;
    w.u8(0xab);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.f64(3.141592653589793);
    w.f64(-0.0);
    w.boolean(true);
    w.boolean(false);
    w.str("graphene");
    w.str("");

    Reader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.f64(), 3.141592653589793);
    const double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero)) << "bit pattern not preserved";
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "graphene");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.finish().ok());
}

TEST(CkptIo, NanRoundTripsBitExactly)
{
    Writer w;
    w.f64(std::numeric_limits<double>::quiet_NaN());
    Reader r(w.data());
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_TRUE(r.finish().ok());
}

TEST(CkptIo, ShortReadLatchesAndReturnsZeroes)
{
    Writer w;
    w.u32(7);
    Reader r(w.data());
    EXPECT_EQ(r.u64(), 0u) << "short read must yield a zero value";
    EXPECT_TRUE(r.failed());
    // Every later read stays harmless and zero-valued.
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.str(), "");
    const Result<void> fin = r.finish();
    ASSERT_FALSE(fin.ok());
    EXPECT_EQ(fin.error().code(), ErrorCode::CkptTruncated);
}

TEST(CkptIo, HugeStringLengthCannotIndexOutOfBounds)
{
    Writer w;
    w.u64(std::numeric_limits<std::uint64_t>::max());
    w.u8(1);
    Reader r(w.data());
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.finish().ok());
}

TEST(CkptIo, TrailingBytesFailFinish)
{
    Writer w;
    w.u64(1);
    w.u64(2);
    Reader r(w.data());
    EXPECT_EQ(r.u64(), 1u);
    const Result<void> fin = r.finish();
    ASSERT_FALSE(fin.ok());
    EXPECT_EQ(fin.error().code(), ErrorCode::Internal);
}

TEST(CkptIo, ExplicitFailLatches)
{
    Writer w;
    w.u64(42);
    Reader r(w.data());
    EXPECT_EQ(r.u64(), 42u);
    r.fail(); // restore-side validation rejected a value
    const Result<void> fin = r.finish();
    ASSERT_FALSE(fin.ok());
    EXPECT_EQ(fin.error().code(), ErrorCode::CkptTruncated);
}

} // namespace
} // namespace ckpt
} // namespace graphene
