/**
 * @file
 * Corpus test for the checkpoint decoder's typed-error contract:
 * every committed file under tests/data/ckpt/ is malformed in exactly
 * one way and must be rejected with exactly the ErrorCode its name
 * promises — never crash, never return a blob. Regenerate the corpus
 * with tools/make_ckpt_corpus.py (kept in lockstep with the mapping
 * below). CI runs this under ASan as part of the injection gate.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"

namespace graphene {
namespace ckpt {
namespace {

/** Fingerprint tools/make_ckpt_corpus.py framed the corpus with. */
constexpr std::uint64_t kKnownFp = 0xC0FFEE0DDEADBEEFULL;

std::vector<std::uint8_t>
slurp(const std::filesystem::path &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(is),
        std::istreambuf_iterator<char>());
}

TEST(CorruptCkptCorpus, EveryFileYieldsItsOwnTypedError)
{
    const std::map<std::string, ErrorCode> expected = {
        {"truncated_header.gckp", ErrorCode::CkptTruncated},
        {"truncated_payload.gckp", ErrorCode::CkptTruncated},
        {"bad_magic.gckp", ErrorCode::CkptBadHeader},
        {"bitflip_header.gckp", ErrorCode::CkptBadHeader},
        {"version_skew.gckp", ErrorCode::CkptVersionSkew},
        {"bitflip_payload.gckp", ErrorCode::CkptBadPayload},
        {"trailing_garbage.gckp", ErrorCode::CkptBadPayload},
        {"config_mismatch.gckp", ErrorCode::CkptConfigMismatch},
    };

    const std::filesystem::path dir =
        std::filesystem::path(GRAPHENE_TEST_DATA_DIR) / "ckpt";

    // The pristine base artifact must decode: proves the corrupted
    // siblings fail for their corruption, not a stale format.
    {
        const auto blob = decode(slurp(dir / "valid.gckp"), kKnownFp);
        ASSERT_TRUE(blob.ok()) << blob.error().describe();
        EXPECT_FALSE(blob.value().payload.empty());
    }

    std::size_t seen = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name == "valid.gckp")
            continue;
        const auto it = expected.find(name);
        ASSERT_NE(it, expected.end())
            << name << " not in the corpus mapping — update "
            << "tests/ckpt/corrupt_corpus_test.cc alongside "
            << "tools/make_ckpt_corpus.py";
        ++seen;

        const auto blob = decode(slurp(entry.path()), kKnownFp);
        ASSERT_FALSE(blob.ok()) << name << " decoded successfully";
        EXPECT_EQ(blob.error().code(), it->second)
            << name << ": " << blob.error().describe();
        EXPECT_FALSE(blob.error().message().empty()) << name;
    }
    EXPECT_EQ(seen, expected.size()) << "corpus file went missing";
}

} // namespace
} // namespace ckpt
} // namespace graphene
