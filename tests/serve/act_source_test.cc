/**
 * @file
 * The streaming ingest layer's contracts: O(chunk) peak buffering
 * however long the stream, loop-at-EOF replay identical to the
 * whole-file TracePattern, checkpointable stream position, and typed
 * (never fatal) error reporting for malformed traces.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/io.hh"
#include "serve/act_source.hh"
#include "workloads/trace_io.hh"

namespace graphene {
namespace serve {
namespace {

class TempTrace
{
  public:
    explicit TempTrace(const std::string &text)
    {
        _path = (std::filesystem::temp_directory_path() /
                 ("serve_src_" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(
                      this)) +
                  ".trace"))
                    .string();
        std::ofstream os(_path);
        os << text;
    }
    ~TempTrace() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

std::string
traceOf(const std::vector<std::uint64_t> &rows)
{
    std::string text = "# test trace\n";
    for (std::uint64_t r : rows)
        text += std::to_string(r) + "\n";
    return text;
}

TEST(SourceSpec, ValidateCollectsEveryViolation)
{
    SourceSpec spec;
    spec.kind = SourceSpec::Kind::TraceFile;
    spec.path = ""; // trace source without a path
    const Result<void> bad = spec.validate();
    ASSERT_FALSE(bad.ok());

    spec.kind = SourceSpec::Kind::Pattern;
    spec.family = "no-such-family";
    ASSERT_FALSE(spec.validate().ok());

    spec.family = "s1";
    spec.param = 0; // cardinality families need param >= 1
    ASSERT_FALSE(spec.validate().ok());

    spec.param = 10;
    EXPECT_TRUE(spec.validate().ok())
        << spec.validate().error().describe();
}

TEST(SourceSpec, SaveLoadRoundTrips)
{
    SourceSpec spec;
    spec.kind = SourceSpec::Kind::TraceFile;
    spec.path = "/some/trace.txt";
    spec.family = "s4";
    spec.param = 7;
    spec.seed = 99;

    ckpt::Writer w;
    spec.save(w);
    ckpt::Reader r(w.data());
    const SourceSpec back = SourceSpec::load(r);
    ASSERT_TRUE(r.finish().ok());
    EXPECT_EQ(back.describe(), spec.describe());
    EXPECT_EQ(back.path, spec.path);
    EXPECT_EQ(back.seed, spec.seed);
}

TEST(ChunkedTrace, LoopsLikeTracePattern)
{
    const std::vector<std::uint64_t> rows = {3, 1, 4, 1, 5, 9, 2, 6};
    TempTrace trace(traceOf(rows));
    ChunkedTraceSource source(trace.path(), 16);

    // Pull 3 passes' worth in odd-sized chunks: the stream must be
    // the file repeated, byte-for-byte what TracePattern replays.
    std::vector<Row> got;
    while (got.size() < rows.size() * 3) {
        const Result<std::size_t> n = source.fill(got, 5);
        ASSERT_TRUE(n.ok()) << n.error().describe();
        ASSERT_GT(n.value(), 0u);
    }
    for (std::size_t i = 0; i < rows.size() * 3; ++i)
        EXPECT_EQ(got[i].value(), rows[i % rows.size()]) << i;
    EXPECT_GE(source.passes(), 2u);
}

TEST(ChunkedTrace, RowBeyondGeometryIsParseError)
{
    TempTrace trace(traceOf({1, 2, 500}));
    ChunkedTraceSource source(trace.path(), 100);
    std::vector<Row> got;
    Result<std::size_t> n = source.fill(got, 64);
    if (n.ok()) // first chunk may end before the bad row
        n = source.fill(got, 64);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code(), ErrorCode::Parse);
}

TEST(ChunkedTrace, MissingFileIsIoError)
{
    ChunkedTraceSource source("/nonexistent/trace.txt", 16);
    std::vector<Row> got;
    const Result<std::size_t> n = source.fill(got, 8);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code(), ErrorCode::Io);
}

TEST(ChunkedTrace, SaveRestoreResumesMidPass)
{
    const std::vector<std::uint64_t> rows = {10, 20, 30, 40, 50};
    TempTrace trace(traceOf(rows));

    ChunkedTraceSource source(trace.path(), 64);
    std::vector<Row> first;
    ASSERT_TRUE(source.fill(first, 3).ok()); // mid-pass position

    ckpt::Writer w;
    source.saveState(w);
    // O(1) position record: two u64 counters, never the rows.
    EXPECT_EQ(w.size(), 16u);

    ChunkedTraceSource resumed(trace.path(), 64);
    ckpt::Reader r(w.data());
    resumed.restoreState(r);
    ASSERT_TRUE(r.finish().ok());

    std::vector<Row> a, b;
    ASSERT_TRUE(source.fill(a, 7).ok());
    ASSERT_TRUE(resumed.fill(b, 7).ok());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].value(), b[i].value()) << i;
}

TEST(ChunkedTrace, RestoreWithVanishedFileFailsOnNextFill)
{
    ckpt::Writer w;
    {
        TempTrace trace(traceOf({1, 2, 3}));
        ChunkedTraceSource source(trace.path(), 16);
        std::vector<Row> got;
        ASSERT_TRUE(source.fill(got, 2).ok());
        source.saveState(w);
    } // trace file deleted here

    ChunkedTraceSource resumed("/nonexistent/gone.trace", 16);
    ckpt::Reader r(w.data());
    resumed.restoreState(r);
    // The ckpt payload itself is fine — the environment is not.
    ASSERT_TRUE(r.finish().ok());
    std::vector<Row> got;
    const Result<std::size_t> n = resumed.fill(got, 4);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code(), ErrorCode::Io);
}

TEST(MakeSource, EveryFamilyBuildsAndIsDeterministic)
{
    for (const char *family :
         {"uniform", "s1", "s2", "s3", "s4", "double", "worst"}) {
        SourceSpec spec;
        spec.kind = SourceSpec::Kind::Pattern;
        spec.family = family;
        spec.param = 6;
        spec.seed = 42;

        auto a = makeSource(spec, 4096);
        auto b = makeSource(spec, 4096);
        ASSERT_TRUE(a.ok()) << family;
        ASSERT_TRUE(b.ok()) << family;

        std::vector<Row> ra, rb;
        ASSERT_TRUE(a.value()->fill(ra, 100).ok()) << family;
        ASSERT_TRUE(b.value()->fill(rb, 100).ok()) << family;
        ASSERT_EQ(ra.size(), rb.size()) << family;
        for (std::size_t i = 0; i < ra.size(); ++i) {
            ASSERT_EQ(ra[i].value(), rb[i].value())
                << family << " diverged at " << i;
            ASSERT_LT(ra[i].value(), 4096u) << family;
        }
    }
}

TEST(MakeSource, UnknownFamilyIsTypedError)
{
    SourceSpec spec;
    spec.family = "zipfian-of-doom";
    const auto built = makeSource(spec, 4096);
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.error().code(), ErrorCode::Config);
}

/**
 * The bounded-memory guarantee: streaming a 10x longer trace through
 * a StreamPattern must not move the ingest buffer high-water mark at
 * all — peak buffering is O(chunk), not O(trace).
 */
TEST(StreamPattern, PeakBufferIsChunkNotTraceLength)
{
    const std::size_t kChunk = 32;
    auto peakFor = [&](std::size_t trace_rows) -> std::size_t {
        std::vector<std::uint64_t> rows;
        for (std::size_t i = 0; i < trace_rows; ++i)
            rows.push_back(i % 64);
        TempTrace trace(traceOf(rows));
        ChunkedTraceSource source(trace.path(), 64);
        StreamPattern pattern(source, kChunk);
        for (std::size_t i = 0; i < trace_rows; ++i)
            pattern.next();
        EXPECT_FALSE(pattern.failed());
        return pattern.peakBuffered();
    };

    const std::size_t peak_short = peakFor(200);
    const std::size_t peak_long = peakFor(2000);
    EXPECT_EQ(peak_short, peak_long)
        << "ingest buffering grew with trace length";
    EXPECT_LE(peak_long, kChunk);
}

TEST(StreamPattern, SaveRestoreContinuesIdentically)
{
    SourceSpec spec;
    spec.family = "s4";
    spec.param = 8;
    spec.seed = 7;
    auto src = makeSource(spec, 1024);
    ASSERT_TRUE(src.ok());
    StreamPattern pattern(*src.value(), 16);
    for (int i = 0; i < 37; ++i) // mid-buffer position
        pattern.next();

    ckpt::Writer w;
    pattern.saveState(w);

    auto src2 = makeSource(spec, 1024);
    ASSERT_TRUE(src2.ok());
    StreamPattern restored(*src2.value(), 16);
    ckpt::Reader r(w.data());
    restored.restoreState(r);
    ASSERT_TRUE(r.finish().ok());
    EXPECT_EQ(restored.consumed(), pattern.consumed());

    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(restored.next().value(), pattern.next().value())
            << "diverged " << i << " rows after restore";
    }
}

TEST(StreamPattern, SourceErrorLatchesInsteadOfAborting)
{
    ChunkedTraceSource source("/nonexistent/trace.txt", 16);
    StreamPattern pattern(source, 8);
    const Row row = pattern.next(); // must not throw or abort
    EXPECT_EQ(row.value(), 0u);     // degraded output
    ASSERT_TRUE(pattern.failed());
    EXPECT_EQ(pattern.error().code(), ErrorCode::Io);
}

} // namespace
} // namespace serve
} // namespace graphene
