/**
 * @file
 * Session-level determinism contracts: the JSONL artifact is a pure
 * function of the SessionSpec — identical across quantum sizes,
 * across checkpoint/kill/resume, and between a forked child and the
 * parent it branched from. Plus the spec's validate/fingerprint/
 * serialization surface.
 */

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hh"
#include "ckpt/io.hh"
#include "serve/session.hh"

namespace graphene {
namespace serve {
namespace {

namespace fs = std::filesystem;

/** Self-cleaning scratch directory per test. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        _path = (fs::temp_directory_path() /
                 ("serve_test_" + tag + "_" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(
                      this))))
                    .string();
        fs::create_directories(_path);
    }
    ~TempDir() { fs::remove_all(_path); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** A small-but-real spec: ~28K ACTs, 8 stats windows. */
SessionSpec
smallSpec(const std::string &id)
{
    SessionSpec spec;
    spec.id = id;
    spec.scheme.kind = schemes::SchemeKind::Graphene;
    spec.scheme.rowHammerThreshold = 2000;
    spec.source.family = "s4";
    spec.source.seed = 11;
    spec.rowsPerBank = 2048;
    spec.windows = 0.02;
    spec.statsWindowCycles = 192000;
    spec.chunkRows = 256;
    return spec;
}

void
runToCompletion(Session &session, std::uint64_t quantum)
{
    for (int guard = 0; guard < 100000; ++guard) {
        const Session::QuantumOutcome outcome =
            session.runQuantum(quantum);
        if (outcome == Session::QuantumOutcome::Done)
            return;
        ASSERT_NE(outcome, Session::QuantumOutcome::Failed)
            << session.failure();
    }
    FAIL() << "session never reached the horizon";
}

TEST(SessionSpec, ValidateCollectsViolations)
{
    SessionSpec spec = smallSpec("ok");
    EXPECT_TRUE(spec.validate().ok())
        << spec.validate().error().describe();

    spec.id = "bad/id"; // '/' would escape the artifact directory
    EXPECT_FALSE(spec.validate().ok());

    spec = smallSpec("x");
    spec.chunkRows = 0;
    EXPECT_FALSE(spec.validate().ok());

    spec = smallSpec("x");
    spec.source.family = "bogus";
    EXPECT_FALSE(spec.validate().ok());
}

TEST(SessionSpec, FingerprintSeesEverySemanticField)
{
    const SessionSpec base = smallSpec("a");
    SessionSpec other = base;
    EXPECT_EQ(base.fingerprint(), other.fingerprint());

    other.id = "b";
    EXPECT_NE(base.fingerprint(), other.fingerprint());

    other = base;
    other.scheme.kind = schemes::SchemeKind::Para;
    EXPECT_NE(base.fingerprint(), other.fingerprint());

    other = base;
    other.source.seed += 1;
    EXPECT_NE(base.fingerprint(), other.fingerprint());

    other = base;
    other.statsWindowCycles += 1;
    EXPECT_NE(base.fingerprint(), other.fingerprint());
}

TEST(SessionSpec, SaveLoadRoundTripsFingerprint)
{
    const SessionSpec spec = smallSpec("rt");
    ckpt::Writer w;
    spec.save(w);
    ckpt::Reader r(w.data());
    const SessionSpec back = SessionSpec::load(r);
    ASSERT_TRUE(r.finish().ok());
    EXPECT_EQ(back.fingerprint(), spec.fingerprint());
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.windowCycles(), spec.windowCycles());
}

TEST(Session, RunsToASummaryLine)
{
    TempDir dir("run");
    Session session(smallSpec("s"), dir.path(), dir.path() + "/ckpt");
    ASSERT_TRUE(session.start().ok());
    runToCompletion(session, 100000);
    EXPECT_EQ(session.state(), Session::State::Done);

    const std::string text = slurp(session.jsonlPath());
    // 8 full stats windows + 1 summary.
    EXPECT_EQ(session.linesEmitted(), 9u);
    EXPECT_NE(text.find("\"window\":0"), std::string::npos);
    EXPECT_NE(text.find("\"window\":7"), std::string::npos);
    EXPECT_NE(text.find("\"summary\":1"), std::string::npos);
    // Bounded ingest held: never more than one chunk buffered.
    EXPECT_LE(session.peakBuffered(), smallSpec("s").chunkRows);
}

TEST(Session, QuantumSizeNeverChangesTheArtifact)
{
    std::string reference;
    for (const std::uint64_t quantum : {30000u, 100000u, 1000000u}) {
        TempDir dir("quantum");
        Session session(smallSpec("q"), dir.path(),
                        dir.path() + "/ckpt");
        ASSERT_TRUE(session.start().ok());
        runToCompletion(session, quantum);
        const std::string text = slurp(session.jsonlPath());
        if (reference.empty())
            reference = text;
        else
            EXPECT_EQ(text, reference)
                << "quantum " << quantum << " changed the bytes";
    }
    EXPECT_FALSE(reference.empty());
}

TEST(Session, KillAndResumeIsByteIdentical)
{
    // Uninterrupted reference.
    TempDir ref_dir("ref");
    Session reference(smallSpec("k"), ref_dir.path(),
                      ref_dir.path() + "/ckpt");
    ASSERT_TRUE(reference.start().ok());
    runToCompletion(reference, 100000);
    const std::string expected = slurp(reference.jsonlPath());

    // Interrupted twin: a few quanta, a checkpoint, more quanta (the
    // torn tail a SIGKILL would leave), then the process "dies" — the
    // Session object is simply dropped mid-run.
    TempDir dir("kill");
    {
        Session session(smallSpec("k"), dir.path(),
                        dir.path() + "/ckpt");
        ASSERT_TRUE(session.start().ok());
        for (int i = 0; i < 4; ++i)
            ASSERT_EQ(session.runQuantum(100000),
                      Session::QuantumOutcome::Again);
        ASSERT_TRUE(session.checkpoint().ok());
        for (int i = 0; i < 3; ++i) // past the durability point
            ASSERT_EQ(session.runQuantum(100000),
                      Session::QuantumOutcome::Again);
    }

    Session resumed(smallSpec("k"), dir.path(),
                    dir.path() + "/ckpt");
    const Result<Session::ResumeReport> report =
        resumed.startResumed();
    ASSERT_TRUE(report.ok()) << report.error().describe();
    EXPECT_TRUE(report.value().resumed);
    runToCompletion(resumed, 100000);

    EXPECT_EQ(slurp(resumed.jsonlPath()), expected);
}

TEST(Session, ResumeWithoutACheckpointStartsFresh)
{
    TempDir dir("fresh");
    Session session(smallSpec("f"), dir.path(),
                    dir.path() + "/ckpt");
    const Result<Session::ResumeReport> report =
        session.startResumed();
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().resumed);
    EXPECT_EQ(session.state(), Session::State::Active);
}

TEST(Session, CorruptCheckpointFallsBackFreshWithNotes)
{
    TempDir dir("corrupt");
    const SessionSpec spec = smallSpec("c");
    fs::create_directories(dir.path() + "/ckpt");
    {
        std::ofstream os(dir.path() + "/ckpt/session_c.gckp",
                         std::ios::binary);
        os << "this is not a checkpoint";
    }
    Session session(spec, dir.path(), dir.path() + "/ckpt");
    const Result<Session::ResumeReport> report =
        session.startResumed();
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().resumed);
    EXPECT_FALSE(report.value().notes.empty());
    // And the fallback still produces the reference artifact.
    runToCompletion(session, 100000);
    EXPECT_EQ(session.state(), Session::State::Done);
}

TEST(Session, ForkedChildMatchesParentByteForByte)
{
    TempDir dir("fork");
    const std::string artifact = dir.path() + "/fork_child.gckp";

    SessionSpec parent_spec = smallSpec("parent");
    Session parent(parent_spec, dir.path(), dir.path() + "/ckpt");
    parent.addForkTrigger(3, artifact);
    ASSERT_TRUE(parent.start().ok());
    runToCompletion(parent, 100000);
    ASSERT_TRUE(fs::exists(artifact));

    // The artifact is framed with the parent's fingerprint.
    const Result<ckpt::Blob> blob =
        ckpt::loadFile(artifact, parent_spec.fingerprint());
    ASSERT_TRUE(blob.ok()) << blob.error().describe();

    SessionSpec child_spec = parent_spec;
    child_spec.id = "child";
    Session child(child_spec, dir.path(), dir.path() + "/ckpt");
    ASSERT_TRUE(child
                    .startForked(blob.value().payload,
                                 parent.jsonlPath())
                    .ok());
    runToCompletion(child, 100000);

    // Window lines carry no session id, so the finished artifacts
    // must be byte-identical: the fork-equivalence contract.
    EXPECT_EQ(slurp(child.jsonlPath()), slurp(parent.jsonlPath()));
}

TEST(Session, FailedSourceEndsInErrorLine)
{
    TempDir dir("fail");
    SessionSpec spec = smallSpec("e");
    spec.source.kind = SourceSpec::Kind::TraceFile;
    spec.source.path = "/nonexistent/trace.txt";
    Session session(spec, dir.path(), dir.path() + "/ckpt");
    ASSERT_TRUE(session.start().ok());
    Session::QuantumOutcome outcome = session.runQuantum(100000);
    EXPECT_EQ(outcome, Session::QuantumOutcome::Failed);
    EXPECT_EQ(session.state(), Session::State::Failed);
    EXPECT_FALSE(session.failure().empty());
    const std::string text = slurp(session.jsonlPath());
    EXPECT_NE(text.find("\"error\":"), std::string::npos);
}

} // namespace
} // namespace serve
} // namespace graphene
