/**
 * @file
 * Service telemetry contracts (DESIGN.md §16): the drain-time
 * artifacts (rollup.jsonl, alerts.jsonl, metrics.prom, status.json)
 * are byte-identical across --jobs 1/4/16 and across cancel+resume;
 * alert firing is deterministic even with a fault-injected session
 * in the mix; volatile context stays in the status.meta.json
 * sidecar; and disabled telemetry writes nothing at all.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hh"
#include "obs/obs.hh"
#include "serve/driver.hh"

namespace graphene {
namespace serve {
namespace {

namespace fs = std::filesystem;

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        _path = (fs::temp_directory_path() /
                 ("serve_tel_" + tag + "_" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(
                      this))))
                    .string();
        fs::create_directories(_path);
    }
    ~TempDir() { fs::remove_all(_path); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** The telemetry artifacts under the byte-identity contract. The
 *  status.meta.json sidecar is deliberately absent: wall-clock,
 *  jobs count and refresh ordinal live there so these can be
 *  compared. */
const char *const kArtifacts[] = {"rollup.jsonl", "alerts.jsonl",
                                  "metrics.prom", "status.json"};

std::string
writeRules(const TempDir &dir)
{
    const std::string path = dir.path() + "/rules.txt";
    std::ofstream os(path);
    os << "# soak watchers\n"
       << "victims: victim_rows_refreshed > 0 for 2\n"
       << "hot: acts > 0\n"
       << "full: buffered_rows >= chunk\n";
    return path;
}

SessionSpec
tenantSpec(unsigned index)
{
    SessionSpec spec;
    spec.id = strprintf("t%02u", index);
    const std::vector<schemes::SchemeKind> kinds =
        schemes::evaluatedSchemes();
    spec.scheme.kind = kinds[index % kinds.size()];
    spec.scheme.rowHammerThreshold = 2000;
    spec.scheme.seed = 1 + index;
    static const char *kFamilies[] = {"uniform", "s1", "s3", "s4",
                                      "worst"};
    spec.source.family =
        kFamilies[index % (sizeof(kFamilies) / sizeof(*kFamilies))];
    spec.source.param = 10;
    spec.source.seed = 1 + index;
    spec.rowsPerBank = 2048;
    spec.windows = 0.02;
    spec.statsWindowCycles = 192000;
    spec.chunkRows = 256;
    return spec;
}

DriverOptions
telemetryOptions(const TempDir &dir, unsigned jobs,
                 const std::string &rules)
{
    DriverOptions opts;
    opts.jobs = jobs;
    opts.quantumCycles = 100000;
    opts.ckptEveryQuanta = 4;
    opts.outDir = dir.path();
    opts.telemetry = true;
    opts.alertRules = rules;
    // Exercise the live refresh path too (its output is transient;
    // only the drain-time snapshot is byte-compared).
    opts.statusEveryTurns = 4;
    return opts;
}

#ifdef GRAPHENE_OBS_OFF

TEST(ServeTelemetryCompileOut, NoArtifactsAreWritten)
{
    TempDir dir("obsoff");
    DriverOptions opts;
    opts.jobs = 2;
    opts.quantumCycles = 100000;
    opts.outDir = dir.path();
    opts.telemetry = true; // requested, but compiled out
    ServeDriver driver(opts);
    for (unsigned i = 0; i < 2; ++i)
        ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());
    CancelToken cancel;
    ASSERT_TRUE(driver.run(cancel).ok());
    for (const char *name : kArtifacts)
        EXPECT_FALSE(fs::exists(dir.path() + "/" + name)) << name;
}

#else // telemetry compiled in

/**
 * The tentpole determinism contract: 8 sessions over >= 3 schemes,
 * and every drain-time telemetry artifact is byte-identical whether
 * the service ran on 1, 4, or 16 workers.
 */
TEST(ServeTelemetry, ArtifactsAreJobsInvariant)
{
    const unsigned kSessions = 8;
    std::vector<std::string> reference;

    for (const unsigned jobs : {1u, 4u, 16u}) {
        TempDir dir("jobs");
        ServeDriver driver(
            telemetryOptions(dir, jobs, writeRules(dir)));
        for (unsigned i = 0; i < kSessions; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());

        CancelToken cancel;
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        ASSERT_TRUE(report.ok()) << report.error().describe();
        EXPECT_EQ(report.value().completed, kSessions);
        // The rules above fire on every healthy session.
        EXPECT_GT(report.value().alertsFired, 0u);

        std::vector<std::string> artifacts;
        for (const char *name : kArtifacts)
            artifacts.push_back(slurp(dir.path() + "/" + name));
        if (reference.empty()) {
            reference = artifacts;
        } else {
            for (std::size_t i = 0; i < artifacts.size(); ++i)
                EXPECT_EQ(artifacts[i], reference[i])
                    << kArtifacts[i] << " differs at jobs=" << jobs;
        }

        // The volatile sidecar exists but is exempt from the
        // comparison: that is where jobs/wall-clock live.
        const std::string meta =
            slurp(dir.path() + "/status.meta.json");
        EXPECT_NE(meta.find("\"volatile\":true"), std::string::npos);
        EXPECT_NE(meta.find("\"jobs\":" + std::to_string(jobs)),
                  std::string::npos);
    }
}

/** A fault-injected (unstartable) session must not perturb the
 *  other tenants' telemetry, and its failure must be reported
 *  identically on every jobs count. */
TEST(ServeTelemetry, FaultInjectedSessionIsDeterministic)
{
    std::vector<std::string> reference;
    for (const unsigned jobs : {1u, 4u}) {
        TempDir dir("fault");
        ServeDriver driver(
            telemetryOptions(dir, jobs, writeRules(dir)));
        SessionSpec broken = tenantSpec(0);
        broken.source.kind = SourceSpec::Kind::TraceFile;
        broken.source.path = dir.path() + "/corrupt.trace";
        {
            std::ofstream os(broken.source.path);
            os << "this is not a trace line\n";
        }
        ASSERT_TRUE(driver.admit(broken).ok());
        for (unsigned i = 1; i < 4; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());

        CancelToken cancel;
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        ASSERT_TRUE(report.ok()) << report.error().describe();
        EXPECT_EQ(report.value().failed, 1u);
        EXPECT_EQ(report.value().completed, 3u);

        const std::string status =
            slurp(dir.path() + "/status.json");
        EXPECT_NE(status.find("\"state\":\"failed\""),
                  std::string::npos);
        EXPECT_NE(status.find("\"failed\":1"), std::string::npos);

        std::vector<std::string> artifacts;
        for (const char *name : kArtifacts)
            artifacts.push_back(slurp(dir.path() + "/" + name));
        if (reference.empty())
            reference = artifacts;
        else
            for (std::size_t i = 0; i < artifacts.size(); ++i)
                EXPECT_EQ(artifacts[i], reference[i])
                    << kArtifacts[i] << " differs at jobs=" << jobs;
    }
}

/** Kill-and-resume equivalence extends to telemetry: a cancelled
 *  run resumed from its manifest produces the same drain-time
 *  artifacts as an uninterrupted one. */
TEST(ServeTelemetry, CancelThenResumeKeepsArtifactsByteIdentical)
{
    const unsigned kSessions = 4;

    TempDir ref_dir("telref");
    std::vector<std::string> expected;
    {
        ServeDriver driver(telemetryOptions(
            ref_dir, 2, writeRules(ref_dir)));
        for (unsigned i = 0; i < kSessions; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());
        CancelToken cancel;
        ASSERT_TRUE(driver.run(cancel).ok());
        for (const char *name : kArtifacts)
            expected.push_back(slurp(ref_dir.path() + "/" + name));
    }

    TempDir dir("telresume");
    const std::string rules = writeRules(dir);
    {
        ServeDriver driver(telemetryOptions(dir, 2, rules));
        for (unsigned i = 0; i < kSessions; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());
        CancelToken cancel;
        std::thread trigger([&cancel]() {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            cancel.cancel();
        });
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        trigger.join();
        ASSERT_TRUE(report.ok()) << report.error().describe();
    }
    {
        DriverOptions opts = telemetryOptions(dir, 2, rules);
        opts.resume = true;
        ServeDriver driver(opts);
        CancelToken cancel;
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        ASSERT_TRUE(report.ok()) << report.error().describe();
        EXPECT_EQ(report.value().completed, kSessions);
    }

    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(slurp(dir.path() + "/" + kArtifacts[i]),
                  expected[i])
            << kArtifacts[i] << " diverged across drain+resume";
}

/** Telemetry off (the library default) leaves the out dir free of
 *  telemetry artifacts entirely. */
TEST(ServeTelemetry, DisabledWritesNothing)
{
    TempDir dir("off");
    DriverOptions opts;
    opts.jobs = 2;
    opts.quantumCycles = 100000;
    opts.outDir = dir.path();
    ServeDriver driver(opts);
    for (unsigned i = 0; i < 2; ++i)
        ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());
    CancelToken cancel;
    ASSERT_TRUE(driver.run(cancel).ok());
    for (const char *name : kArtifacts)
        EXPECT_FALSE(fs::exists(dir.path() + "/" + name)) << name;
    EXPECT_FALSE(fs::exists(dir.path() + "/status.meta.json"));
}

#endif // GRAPHENE_OBS_OFF

} // namespace
} // namespace serve
} // namespace graphene
