/**
 * @file
 * Service-level contracts: per-session JSONL byte-identical across
 * --jobs 1/4/16 (≥ 8 concurrent sessions), admission control typed
 * errors, fork materialization (warm and cross-scheme), graceful
 * drain on cancel plus manifest-driven resume, and the fork-spec
 * grammar.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hh"
#include "serve/driver.hh"

namespace graphene {
namespace serve {
namespace {

namespace fs = std::filesystem;

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        _path = (fs::temp_directory_path() /
                 ("serve_drv_" + tag + "_" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(
                      this))))
                    .string();
        fs::create_directories(_path);
    }
    ~TempDir() { fs::remove_all(_path); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** The CLI's tenant mix in miniature: schemes × families. */
SessionSpec
tenantSpec(unsigned index)
{
    SessionSpec spec;
    spec.id = strprintf("t%02u", index);
    const std::vector<schemes::SchemeKind> kinds =
        schemes::evaluatedSchemes();
    spec.scheme.kind = kinds[index % kinds.size()];
    spec.scheme.rowHammerThreshold = 2000;
    spec.scheme.seed = 1 + index;
    static const char *kFamilies[] = {"uniform", "s1", "s3", "s4",
                                      "worst"};
    spec.source.family =
        kFamilies[index % (sizeof(kFamilies) / sizeof(*kFamilies))];
    spec.source.param = 10;
    spec.source.seed = 1 + index;
    spec.rowsPerBank = 2048;
    spec.windows = 0.02;
    spec.statsWindowCycles = 192000;
    spec.chunkRows = 256;
    return spec;
}

DriverOptions
optionsFor(const TempDir &dir, unsigned jobs)
{
    DriverOptions opts;
    opts.jobs = jobs;
    opts.quantumCycles = 100000;
    opts.ckptEveryQuanta = 4;
    opts.outDir = dir.path();
    return opts;
}

TEST(ParseForkSpec, GrammarAndTypedErrors)
{
    const Result<ForkSpec> warm = parseForkSpec("t00@3:child");
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm.value().parent, "t00");
    EXPECT_EQ(warm.value().window, 3u);
    EXPECT_EQ(warm.value().child, "child");
    EXPECT_TRUE(warm.value().scheme.empty());

    const Result<ForkSpec> cold = parseForkSpec("a@1:b:graphene");
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(cold.value().scheme, "graphene");

    for (const char *bad :
         {"", "noat", "@1:b", "a@:b", "a@x:b", "a@0:b", "a@1:",
          "a@1:b:", "a@1:b:nosuchscheme"}) {
        const Result<ForkSpec> parsed = parseForkSpec(bad);
        EXPECT_FALSE(parsed.ok()) << "'" << bad << "' parsed";
    }
}

TEST(ParseSchemeKind, CaseInsensitiveNames)
{
    EXPECT_EQ(parseSchemeKind("Graphene").value(),
              schemes::SchemeKind::Graphene);
    EXPECT_EQ(parseSchemeKind("PARA").value(),
              schemes::SchemeKind::Para);
    EXPECT_EQ(parseSchemeKind("twice").value(),
              schemes::SchemeKind::TwiCe);
    EXPECT_EQ(parseSchemeKind("none").value(),
              schemes::SchemeKind::None);
    EXPECT_FALSE(parseSchemeKind("rowpress").ok());
}

TEST(ServeDriver, AdmissionControlIsTyped)
{
    TempDir dir("admit");
    DriverOptions opts = optionsFor(dir, 1);
    opts.maxSessions = 2;
    ServeDriver driver(opts);

    ASSERT_TRUE(driver.admit(tenantSpec(0)).ok());
    const Result<void> dup = driver.admit(tenantSpec(0));
    ASSERT_FALSE(dup.ok());
    EXPECT_EQ(dup.error().code(), ErrorCode::InvalidArgument);

    SessionSpec invalid = tenantSpec(3);
    invalid.source.family = "bogus";
    const Result<void> bad = driver.admit(invalid);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::Config);

    ASSERT_TRUE(driver.admit(tenantSpec(1)).ok());
    const Result<void> full = driver.admit(tenantSpec(2));
    ASSERT_FALSE(full.ok());
    EXPECT_EQ(full.error().code(), ErrorCode::InvalidArgument);
}

/**
 * The headline determinism contract: 8 concurrent sessions, and the
 * per-session artifacts are byte-identical whether the service ran
 * them on 1, 4, or 16 workers.
 */
TEST(ServeDriver, JobsCountNeverChangesSessionArtifacts)
{
    const unsigned kSessions = 8;
    std::vector<std::string> reference;

    for (const unsigned jobs : {1u, 4u, 16u}) {
        TempDir dir("jobs");
        ServeDriver driver(optionsFor(dir, jobs));
        for (unsigned i = 0; i < kSessions; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());

        CancelToken cancel;
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        ASSERT_TRUE(report.ok()) << report.error().describe();
        EXPECT_EQ(report.value().completed, kSessions);
        EXPECT_EQ(report.value().failed, 0u);

        std::vector<std::string> artifacts;
        for (unsigned i = 0; i < kSessions; ++i)
            artifacts.push_back(
                slurp(dir.path() + "/" +
                      strprintf("session_t%02u.jsonl", i)));
        if (reference.empty()) {
            reference = artifacts;
        } else {
            for (unsigned i = 0; i < kSessions; ++i)
                EXPECT_EQ(artifacts[i], reference[i])
                    << "session t" << i << " differs at jobs="
                    << jobs;
        }
    }
}

/** Warm fork: the child continues the parent's engine state and
 *  inherits its durable prefix, so the finished artifacts match. */
TEST(ServeDriver, WarmForkChildEqualsParent)
{
    TempDir dir("warmfork");
    DriverOptions opts = optionsFor(dir, 2);
    opts.forks.push_back(
        parseForkSpec("t00@2:branch").value());
    ServeDriver driver(opts);
    ASSERT_TRUE(driver.admit(tenantSpec(0)).ok());
    ASSERT_TRUE(driver.admit(tenantSpec(1)).ok());

    CancelToken cancel;
    const Result<ServeDriver::RunReport> report = driver.run(cancel);
    ASSERT_TRUE(report.ok()) << report.error().describe();
    EXPECT_EQ(report.value().forked, 1u);
    EXPECT_EQ(report.value().completed, 3u);

    EXPECT_EQ(slurp(dir.path() + "/session_branch.jsonl"),
              slurp(dir.path() + "/session_t00.jsonl"));
}

/** Cross-scheme fork: engine state cannot transplant, so the child
 *  is a cold run of the same stream under the new scheme — and must
 *  byte-match an explicitly fresh run of that spec. */
TEST(ServeDriver, CrossSchemeForkEqualsFreshRun)
{
    TempDir dir("coldfork");
    DriverOptions opts = optionsFor(dir, 2);
    opts.forks.push_back(
        parseForkSpec("t00@2:regrown:graphene").value());
    ServeDriver driver(opts);
    ASSERT_TRUE(driver.admit(tenantSpec(0)).ok());

    CancelToken cancel;
    const Result<ServeDriver::RunReport> report = driver.run(cancel);
    ASSERT_TRUE(report.ok()) << report.error().describe();
    EXPECT_EQ(report.value().forked, 1u);

    // Fresh run of the identical stream spec under Graphene. Window
    // lines carry no id, so the bytes must agree exactly.
    TempDir fresh_dir("coldref");
    ServeDriver fresh(optionsFor(fresh_dir, 1));
    SessionSpec regrown = tenantSpec(0);
    regrown.id = "ref";
    regrown.scheme.kind = schemes::SchemeKind::Graphene;
    ASSERT_TRUE(fresh.admit(regrown).ok());
    CancelToken cancel2;
    ASSERT_TRUE(fresh.run(cancel2).ok());

    EXPECT_EQ(slurp(dir.path() + "/session_regrown.jsonl"),
              slurp(fresh_dir.path() + "/session_ref.jsonl"));
}

/**
 * Cancel mid-service, then resume from the manifest: whatever
 * instant the drain hit, the resumed service must finish every
 * session with byte-identical artifacts. (The CI soak leg does the
 * same dance with a real SIGKILL.)
 */
TEST(ServeDriver, CancelThenResumeIsByteIdentical)
{
    const unsigned kSessions = 4;

    // Uninterrupted reference artifacts.
    TempDir ref_dir("drainref");
    std::vector<std::string> expected;
    {
        ServeDriver driver(optionsFor(ref_dir, 2));
        for (unsigned i = 0; i < kSessions; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());
        CancelToken cancel;
        ASSERT_TRUE(driver.run(cancel).ok());
        for (unsigned i = 0; i < kSessions; ++i)
            expected.push_back(
                slurp(ref_dir.path() + "/" +
                      strprintf("session_t%02u.jsonl", i)));
    }

    // Interrupted service: cancel fires from another thread at an
    // arbitrary point; run() drains (checkpoints + manifest).
    TempDir dir("drain");
    {
        ServeDriver driver(optionsFor(dir, 2));
        for (unsigned i = 0; i < kSessions; ++i)
            ASSERT_TRUE(driver.admit(tenantSpec(i)).ok());
        CancelToken cancel;
        std::thread trigger([&cancel]() {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            cancel.cancel();
        });
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        trigger.join();
        ASSERT_TRUE(report.ok()) << report.error().describe();
    }

    // Resume rebuilds the roster from the manifest alone — no
    // sessions re-admitted here — and finishes the job.
    {
        DriverOptions opts = optionsFor(dir, 2);
        opts.resume = true;
        ServeDriver driver(opts);
        CancelToken cancel;
        const Result<ServeDriver::RunReport> report =
            driver.run(cancel);
        ASSERT_TRUE(report.ok()) << report.error().describe();
        EXPECT_EQ(report.value().completed, kSessions);
        EXPECT_EQ(report.value().failed, 0u);
    }

    for (unsigned i = 0; i < kSessions; ++i)
        EXPECT_EQ(slurp(dir.path() + "/" +
                        strprintf("session_t%02u.jsonl", i)),
                  expected[i])
            << "session t" << i << " diverged across drain+resume";
}

/** A failed session is service data, not a service error. */
TEST(ServeDriver, FailedSessionIsReportedNotFatal)
{
    TempDir dir("fail");
    ServeDriver driver(optionsFor(dir, 1));
    SessionSpec broken = tenantSpec(0);
    broken.source.kind = SourceSpec::Kind::TraceFile;
    broken.source.path = "/nonexistent/trace.txt";
    ASSERT_TRUE(driver.admit(broken).ok());
    ASSERT_TRUE(driver.admit(tenantSpec(1)).ok());

    CancelToken cancel;
    const Result<ServeDriver::RunReport> report = driver.run(cancel);
    ASSERT_TRUE(report.ok()) << report.error().describe();
    EXPECT_EQ(report.value().failed, 1u);
    EXPECT_EQ(report.value().completed, 1u);
}

} // namespace
} // namespace serve
} // namespace graphene
