/**
 * @file
 * Tests for the elevated-refresh-rate analysis (Section II-B).
 */

#include <gtest/gtest.h>

#include "analysis/refresh_rate.hh"
#include "sim/act_engine.hh"

namespace graphene {
namespace analysis {
namespace {

TEST(RefreshRate, BaselineMatchesW)
{
    const auto timing = dram::TimingParams::ddr4_2400();
    const auto r = evaluateRefreshRate(timing, 1, 50000);
    EXPECT_EQ(r.maxActsBetweenRefreshes, timing.maxActsInWindow(1).value());
    EXPECT_FALSE(r.protects);
    EXPECT_DOUBLE_EQ(r.energyMultiplier, 1.0);
}

TEST(RefreshRate, DoublingDoesNotProtect)
{
    // The vendors' 2x patch leaves a ~680K-ACT window: useless
    // against a 50K threshold.
    const auto timing = dram::TimingParams::ddr4_2400();
    const auto r = evaluateRefreshRate(timing, 2, 50000);
    EXPECT_FALSE(r.protects);
    EXPECT_GT(r.maxActsBetweenRefreshes, 50000u * 10);
}

TEST(RefreshRate, RequiredMultiplierNear13For50K)
{
    // W/m alone suggests ~27x, but the growing tRFC share of tREFI
    // shrinks the usable window too, so the wall arrives earlier.
    const auto timing = dram::TimingParams::ddr4_2400();
    const unsigned m = requiredMultiplier(timing, 50000);
    EXPECT_GE(m, 12u);
    EXPECT_LE(m, 14u);
    const auto r = evaluateRefreshRate(timing, m, 50000);
    EXPECT_TRUE(r.protects);
    EXPECT_FALSE(evaluateRefreshRate(timing, m - 1, 50000).protects);
}

TEST(RefreshRate, CostsGrowLinearly)
{
    const auto timing = dram::TimingParams::ddr4_2400();
    const auto r4 = evaluateRefreshRate(timing, 4, 50000);
    const auto r8 = evaluateRefreshRate(timing, 8, 50000);
    EXPECT_DOUBLE_EQ(r8.energyMultiplier, 2 * r4.energyMultiplier);
    EXPECT_NEAR(r8.bankTimeLost, 2 * r4.bankTimeLost, 1e-12);
}

TEST(RefreshRate, InfeasibleWhenRefSaturates)
{
    // tREFI / m < tRFC: the device does nothing but refresh.
    const auto timing = dram::TimingParams::ddr4_2400();
    const auto r = evaluateRefreshRate(timing, 23, 50000);
    EXPECT_FALSE(r.feasible); // 7800 / 23 = 339 ns < tRFC = 350 ns
    EXPECT_FALSE(r.protects);
}

TEST(RefreshRate, VeryLowThresholdsAreUnprotectable)
{
    // Below the feasibility wall no multiplier protects at all.
    const auto timing = dram::TimingParams::ddr4_2400();
    EXPECT_EQ(requiredMultiplier(timing, 50), 0u);
}

TEST(RefreshRate, SimulatedFastRefreshStopsAttackWhereAnalysisSaysSo)
{
    // Cross-check the analysis against the actual simulator: scale
    // tREFW/tREFI down by m and run a single-row attack at a
    // threshold the analysis says m protects.
    const auto base = dram::TimingParams::ddr4_2400();
    const std::uint64_t trh = 200000;
    const unsigned m = requiredMultiplier(base, trh);
    ASSERT_GT(m, 0u);

    dram::TimingParams fast = base;
    fast.tREFI = base.tREFI / m;
    fast.tREFW = base.tREFW / m;

    sim::ActEngineConfig config;
    config.scheme.kind = schemes::SchemeKind::None;
    config.timing = fast;
    config.physicalThreshold = trh;
    config.windows = 2.0 * m; // same wall-clock as 2 base windows
    auto pattern = workloads::patterns::s3(config.rowsPerBank);
    const auto protected_run = sim::runActStream(config, *pattern);
    EXPECT_EQ(protected_run.bitFlips, 0u);

    // And one multiplier lower fails.
    dram::TimingParams slow = base;
    slow.tREFI = base.tREFI / (m - 1);
    slow.tREFW = base.tREFW / (m - 1);
    sim::ActEngineConfig weak = config;
    weak.timing = slow;
    weak.windows = 2.0 * (m - 1);
    auto pattern2 = workloads::patterns::s3(weak.rowsPerBank);
    const auto weak_run = sim::runActStream(weak, *pattern2);
    EXPECT_GT(weak_run.bitFlips, 0u);
}

} // namespace
} // namespace analysis
} // namespace graphene
