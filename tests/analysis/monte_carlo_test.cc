/**
 * @file
 * Monte Carlo validation of the PARA security model: empirical
 * protection-failure rates of the actual Para scheme implementation
 * against the Section V-A recurrence, at a scaled-down threshold
 * where failures are frequent enough to measure.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/para_model.hh"
#include "schemes/para.hh"

namespace graphene {
namespace analysis {
namespace {

/**
 * One trial of the analytic model's worst case: a single aggressor
 * hammered for @p n_acts ACTs; the trial fails if either victim ever
 * sees @p trh consecutive ACTs with no refresh.
 */
bool
trialFails(double p, std::uint64_t trh, std::uint64_t n_acts,
           std::uint64_t seed)
{
    schemes::ParaConfig config;
    config.probabilities = {p};
    config.seed = seed;
    schemes::Para para(config);

    const Row aggressor{1000};
    std::uint64_t run_low = 0, run_high = 0;
    RefreshAction action;
    for (std::uint64_t i = 0; i < n_acts; ++i) {
        ++run_low;
        ++run_high;
        if (run_low >= trh || run_high >= trh)
            return true;
        action.clear();
        para.onActivate(Cycle{i}, aggressor, action);
        for (Row v : action.victimRows) {
            if (v == aggressor - 1)
                run_low = 0;
            else if (v == aggressor + 1)
                run_high = 0;
        }
    }
    return false;
}

TEST(MonteCarlo, EmpiricalFailureRateMatchesRecurrence)
{
    const double p = 0.017;
    const std::uint64_t trh = 1000;
    const std::uint64_t n_acts = 100000;

    const double predicted =
        ParaModel::windowFailureProbability(p, trh, n_acts);
    ASSERT_GT(predicted, 0.1);
    ASSERT_LT(predicted, 0.6);

    const int trials = 400;
    int failures = 0;
    for (int t = 0; t < trials; ++t)
        failures += trialFails(p, trh, n_acts, 1000 + t);
    const double measured =
        static_cast<double>(failures) / trials;

    // Binomial noise at 400 trials is ~2.3% std; allow 4 sigma plus
    // model slack (the recurrence treats the two victims as one
    // compound event).
    EXPECT_NEAR(measured, predicted, 0.12)
        << "predicted " << predicted << " measured " << measured;
}

TEST(MonteCarlo, HigherProbabilityLowersFailures)
{
    const std::uint64_t trh = 1000;
    const std::uint64_t n_acts = 50000;
    auto rate = [&](double p) {
        int failures = 0;
        for (int t = 0; t < 150; ++t)
            failures += trialFails(p, trh, n_acts, 77 + t);
        return failures / 150.0;
    };
    const double low_p = rate(0.010);
    const double high_p = rate(0.030);
    EXPECT_GT(low_p, high_p);
}

TEST(MonteCarlo, SafeMarginProbabilityNeverFails)
{
    // p large enough that (1 - p/2)^trh is astronomically small.
    for (int t = 0; t < 50; ++t)
        EXPECT_FALSE(trialFails(0.2, 1000, 100000, 5 + t));
}

} // namespace
} // namespace analysis
} // namespace graphene
