/**
 * @file
 * Tests for the PARA security model: recurrence behaviour and the
 * paper's derived probabilities (Sections V-A and V-C).
 */

#include <gtest/gtest.h>

#include "analysis/para_model.hh"
#include "dram/timing.hh"

namespace graphene {
namespace analysis {
namespace {

TEST(ParaModel, ZeroBelowThreshold)
{
    EXPECT_EQ(ParaModel::windowFailureProbability(0.001, 1000, 999),
              0.0);
}

TEST(ParaModel, ZeroProbabilityAlwaysFails)
{
    // With p = 0 no refresh ever happens: failure is certain once
    // N >= T... c collapses to 0 though. p=0 means log(0): guard by
    // a tiny p instead and expect near-1 for long streams.
    const double pw =
        ParaModel::windowFailureProbability(1e-9, 100, 100000);
    EXPECT_GT(pw, 0.0);
}

TEST(ParaModel, MonotoneInStreamLength)
{
    const double p = 0.01;
    double prev = 0.0;
    for (std::uint64_t n : {1000u, 2000u, 5000u, 10000u}) {
        const double v =
            ParaModel::windowFailureProbability(p, 1000, n);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(ParaModel, MonotoneDecreasingInP)
{
    double prev = 1.0;
    for (double p : {0.001, 0.003, 0.01, 0.03}) {
        const double v =
            ParaModel::windowFailureProbability(p, 1000, 100000);
        EXPECT_LE(v, prev) << "p=" << p;
        prev = v;
    }
}

TEST(ParaModel, YearlyAmplifiesPerWindow)
{
    const double per_window = 1e-12;
    const double yearly =
        ParaModel::yearlyFailureProbability(per_window, 64, 0.064);
    // ~3.15e10 trials x 1e-12 ~ 3.2%.
    EXPECT_NEAR(yearly, 0.031, 0.005);
}

TEST(ParaModel, YearlySaturatesAtOne)
{
    EXPECT_NEAR(
        ParaModel::yearlyFailureProbability(0.01, 64, 0.064), 1.0,
        1e-9);
}

TEST(ParaModel, RequiredProbabilityReproducesPaper50K)
{
    // The paper derives p = 0.00145 for T_RH = 50K on 64 banks.
    const auto t = dram::TimingParams::ddr4_2400();
    const double p =
        ParaModel::requiredProbability(50000, t.maxActsInWindow(1).value());
    EXPECT_NEAR(p, 0.00145, 0.0001);
}

TEST(ParaModel, RequiredProbabilityReproducesPaper25K)
{
    const auto t = dram::TimingParams::ddr4_2400();
    const double p =
        ParaModel::requiredProbability(25000, t.maxActsInWindow(1).value());
    EXPECT_NEAR(p, 0.00295, 0.0002);
}

TEST(ParaModel, RequiredProbabilityScalesInversely)
{
    const auto t = dram::TimingParams::ddr4_2400();
    const std::uint64_t w = t.maxActsInWindow(1).value();
    double prev = 0.0;
    for (std::uint64_t trh : {50000u, 25000u, 12500u, 6250u}) {
        const double p = ParaModel::requiredProbability(trh, w);
        EXPECT_GT(p, prev) << trh;
        prev = p;
    }
    // Roughly p ~ c / T_RH: halving the threshold roughly doubles p.
    const double p50 = ParaModel::requiredProbability(50000, w);
    const double p25 = ParaModel::requiredProbability(25000, w);
    EXPECT_NEAR(p25 / p50, 2.0, 0.2);
}

TEST(ParaModel, SolvedPMeetsTheTarget)
{
    const auto t = dram::TimingParams::ddr4_2400();
    const std::uint64_t w = t.maxActsInWindow(1).value();
    const double p = ParaModel::requiredProbability(50000, w);
    const double pw =
        ParaModel::windowFailureProbability(p, 50000, w);
    const double yearly =
        ParaModel::yearlyFailureProbability(pw, 64, 0.064);
    EXPECT_LE(yearly, 0.01);
    // And it is tight: 20% less probability misses the target.
    const double pw_low =
        ParaModel::windowFailureProbability(p * 0.8, 50000, w);
    EXPECT_GT(
        ParaModel::yearlyFailureProbability(pw_low, 64, 0.064),
        0.01);
}

} // namespace
} // namespace analysis
} // namespace graphene
