/**
 * @file
 * Tests for the FR-FCFS queued front-end used by trace replay.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/queued_controller.hh"

namespace graphene {
namespace mem {
namespace {

ControllerConfig
baseConfig(schemes::SchemeKind kind = schemes::SchemeKind::None)
{
    ControllerConfig c;
    c.scheme.kind = kind;
    c.fault.rowHammerThreshold = 1e12;
    return c;
}

struct TraceBuilder
{
    std::vector<MemRequest> requests;
    std::vector<unsigned> banks;
    std::vector<Row> rows;

    void
    add(std::uint64_t issue, unsigned bank, std::uint64_t row,
        bool write = false)
    {
        requests.push_back({Addr{}, write, 0, Cycle{issue}});
        banks.push_back(bank);
        rows.push_back(Row{static_cast<Row::rep>(row)});
    }
};

TEST(QueuedController, ServesEverythingOnce)
{
    QueuedChannelController q(baseConfig(), SchedulerPolicy::FrFcfs);
    TraceBuilder t;
    for (int i = 0; i < 100; ++i)
        t.add(i * 10, i % 4, i % 7);
    const auto served = q.run(t.requests, t.banks, t.rows);
    EXPECT_EQ(served.size(), 100u);
    for (const auto &s : served)
        EXPECT_GE(s.completion, s.request.issue);
}

TEST(QueuedController, FcfsKeepsArrivalOrderPerBank)
{
    QueuedChannelController q(baseConfig(), SchedulerPolicy::Fcfs);
    TraceBuilder t;
    // All to one bank, all queued at once, alternating rows.
    for (int i = 0; i < 10; ++i)
        t.add(0, 0, i % 2 ? 100 : 200);
    const auto served = q.run(t.requests, t.banks, t.rows);
    ASSERT_EQ(served.size(), 10u);
    for (std::size_t i = 1; i < served.size(); ++i)
        EXPECT_GE(served[i].completion, served[i - 1].completion);
    // Alternation means nearly every access re-activates.
    unsigned hits = 0;
    for (const auto &s : served)
        hits += s.rowHit;
    EXPECT_LE(hits, 1u);
}

TEST(QueuedController, FrFcfsGroupsRowHits)
{
    QueuedChannelController q(baseConfig(), SchedulerPolicy::FrFcfs);
    TraceBuilder t;
    // Interleaved rows, all pending simultaneously: the scheduler
    // should batch same-row requests and recover row hits.
    for (int i = 0; i < 10; ++i)
        t.add(0, 0, i % 2 ? 100 : 200);
    const auto served = q.run(t.requests, t.banks, t.rows);
    unsigned hits = 0;
    for (const auto &s : served)
        hits += s.rowHit;
    EXPECT_GE(hits, 4u);
}

TEST(QueuedController, FrFcfsBeatsFcfsOnInterleavedTrace)
{
    auto mean_latency = [](SchedulerPolicy policy) {
        QueuedChannelController q(baseConfig(), policy);
        TraceBuilder t;
        // Bursty arrivals: every 2000 cycles a batch of 16 requests
        // lands on one bank with interleaved rows, so the queue is
        // deep enough for reordering to matter.
        Rng rng(5);
        for (int burst = 0; burst < 400; ++burst) {
            const std::uint64_t base = burst * 2000ULL;
            const unsigned bank = rng.nextRange(4);
            for (int i = 0; i < 16; ++i)
                t.add(base + i, bank, i % 2 ? 100 : 200);
        }
        const auto served = q.run(t.requests, t.banks, t.rows);
        return q.stats(served);
    };
    const ReplayStats frfcfs = mean_latency(SchedulerPolicy::FrFcfs);
    const ReplayStats fcfs = mean_latency(SchedulerPolicy::Fcfs);
    EXPECT_GT(frfcfs.rowHitRate, fcfs.rowHitRate);
    EXPECT_LT(frfcfs.meanLatency, fcfs.meanLatency);
}

TEST(QueuedController, BatchCapBoundsOvertaking)
{
    // With a cap of 2, a stream of hits cannot starve the head
    // conflict request indefinitely.
    ControllerConfig config = baseConfig();
    QueuedChannelController q(config, SchedulerPolicy::FrFcfs, 2);
    TraceBuilder t;
    t.add(0, 0, 100); // opens row 100
    t.add(1, 0, 200); // the conflict victim
    for (int i = 0; i < 20; ++i)
        t.add(2 + i, 0, 100); // a flood of would-be hits
    const auto served = q.run(t.requests, t.banks, t.rows);
    // Find the completion rank of the row-200 request.
    std::size_t rank = 0;
    for (std::size_t i = 0; i < served.size(); ++i)
        if (t.rows.size() && served[i].request.issue == Cycle{1})
            rank = i;
    EXPECT_LE(rank, 4u);
}

TEST(QueuedController, SchemeStillProtectsUnderReordering)
{
    ControllerConfig config = baseConfig(schemes::SchemeKind::Graphene);
    config.scheme.rowHammerThreshold = 2000;
    config.fault.rowHammerThreshold = 2000;
    QueuedChannelController q(config, SchedulerPolicy::FrFcfs);
    TraceBuilder t;
    // A double-sided hammer embedded in background traffic.
    Rng rng(7);
    for (int i = 0; i < 60000; ++i) {
        if (rng.bernoulli(0.5))
            t.add(i * 30, 0, i % 2 ? 999 : 1001);
        else
            t.add(i * 30, rng.nextRange(16),
                  rng.nextRange(65536));
    }
    const auto served = q.run(t.requests, t.banks, t.rows);
    const ReplayStats stats = q.stats(served);
    EXPECT_EQ(stats.bitFlips, 0u);
    EXPECT_GT(stats.victimRowsRefreshed, 0u);
}

TEST(QueuedController, StatsAggregateCorrectly)
{
    QueuedChannelController q(baseConfig(), SchedulerPolicy::Fcfs);
    TraceBuilder t;
    t.add(0, 0, 100);
    t.add(0, 1, 100);
    const auto served = q.run(t.requests, t.banks, t.rows);
    const ReplayStats stats = q.stats(served);
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_GT(stats.meanLatency, 0.0);
    EXPECT_GE(stats.maxLatency,
              Cycle{static_cast<std::uint64_t>(stats.meanLatency)});
}

} // namespace
} // namespace mem
} // namespace graphene
