/**
 * @file
 * Tests for the channel controller: row-buffer behaviour, refresh
 * cadence, scheme wiring, and victim-refresh overhead accounting.
 */

#include <gtest/gtest.h>

#include "mem/controller.hh"

namespace graphene {
namespace mem {
namespace {

ControllerConfig
baseConfig(schemes::SchemeKind kind = schemes::SchemeKind::None)
{
    ControllerConfig c;
    c.scheme.kind = kind;
    c.fault.rowHammerThreshold = 1e12;
    return c;
}

TEST(Controller, FirstAccessActivates)
{
    ChannelController ctrl(baseConfig());
    const ServiceResult r =
        ctrl.access(Cycle{0}, 0, Row{100}, false);
    EXPECT_TRUE(r.didAct);
    EXPECT_FALSE(r.rowHit);
    EXPECT_GT(r.completion.value(), 0u);
    EXPECT_EQ(ctrl.actCount(), ActCount{1});
}

TEST(Controller, SameRowHitsUntilPageLimit)
{
    ControllerConfig config = baseConfig();
    config.pageHitLimit = 4;
    ChannelController ctrl(config);
    Cycle t{};
    ServiceResult r = ctrl.access(t, 0, Row{100}, false);
    unsigned hits = 0;
    for (int i = 0; i < 4; ++i) {
        r = ctrl.access(r.completion, 0, Row{100}, false);
        hits += r.rowHit;
    }
    EXPECT_EQ(hits, 4u);
    // The 5th same-row access exceeds the limit: page closed and
    // re-opened (minimalist-open).
    r = ctrl.access(r.completion, 0, Row{100}, false);
    EXPECT_TRUE(r.didAct);
}

TEST(Controller, DifferentRowConflictReactivates)
{
    ChannelController ctrl(baseConfig());
    ServiceResult a = ctrl.access(Cycle{0}, 0, Row{100}, false);
    ServiceResult b =
        ctrl.access(a.completion, 0, Row{200}, false);
    EXPECT_TRUE(b.didAct);
    EXPECT_FALSE(b.rowHit);
    EXPECT_EQ(ctrl.actCount(), ActCount{2});
}

TEST(Controller, BanksAreIndependent)
{
    ChannelController ctrl(baseConfig());
    ctrl.access(Cycle{0}, 0, Row{100}, false);
    const ServiceResult r =
        ctrl.access(Cycle{0}, 1, Row{100}, false);
    EXPECT_TRUE(r.didAct);
    // Bank 1's ACT does not wait for bank 0 beyond the shared bus.
    EXPECT_LT(r.completion.value(), 200u);
}

TEST(Controller, RefreshCadenceMatchesTrefi)
{
    ControllerConfig config = baseConfig();
    ChannelController ctrl(config);
    const Cycle span = config.timing.cREFI() * 10 + Cycle{5};
    ctrl.catchUpRefresh(span);
    EXPECT_EQ(ctrl.rank().refreshCount(), 10u);
}

TEST(Controller, GrapheneSchemeIsWiredPerBank)
{
    ControllerConfig config = baseConfig(schemes::SchemeKind::Graphene);
    ChannelController ctrl(config);
    for (unsigned b = 0; b < config.banksPerRank; ++b) {
        ASSERT_NE(ctrl.scheme(b), nullptr);
        EXPECT_EQ(ctrl.scheme(b)->name(), "Graphene");
    }
    EXPECT_EQ(ctrl.scheme(0), ctrl.scheme(0));
    EXPECT_NE(ctrl.scheme(0), ctrl.scheme(1));
}

TEST(Controller, NoneSchemeMeansNullPerBank)
{
    ChannelController ctrl(baseConfig());
    EXPECT_EQ(ctrl.scheme(0), nullptr);
}

TEST(Controller, HammeringTriggersVictimRefreshes)
{
    ControllerConfig config = baseConfig(schemes::SchemeKind::Graphene);
    config.scheme.rowHammerThreshold = 2000; // T = 333 at k=2
    ChannelController ctrl(config);
    Cycle t{};
    for (int i = 0; i < 2000; ++i) {
        // Alternate rows to defeat the open-page hit path and force
        // an ACT per access.
        const Row row{i % 2 ? 100u : 200u};
        const ServiceResult r = ctrl.access(t, 0, row, false);
        t = r.completion;
    }
    EXPECT_GT(ctrl.victimRowsRefreshed(), 0u);
}

TEST(Controller, VictimRefreshDelaysSubsequentAccesses)
{
    ControllerConfig config = baseConfig(schemes::SchemeKind::Graphene);
    config.scheme.rowHammerThreshold = 2000;
    ChannelController ctrl(config);

    Cycle t{};
    Cycle max_gap{};
    Cycle prev_completion{};
    for (int i = 0; i < 2000; ++i) {
        const Row row{i % 2 ? 100u : 200u};
        const ServiceResult r = ctrl.access(t, 0, row, false);
        if (prev_completion != Cycle{})
            max_gap = std::max(max_gap,
                               r.completion - prev_completion);
        prev_completion = r.completion;
        t = r.completion;
    }
    // At least one access was stalled behind a 2-row NRR (2 x tRC).
    EXPECT_GE(max_gap, config.timing.cRC() * 2);
}

TEST(Controller, RefreshDebtConservesBusyTime)
{
    // A CBT-style large burst drained in chunks must charge the same
    // victim-row count and, over time, the same bank busy cycles as
    // the atomic model.
    ControllerConfig chunked = baseConfig(schemes::SchemeKind::Cbt);
    chunked.scheme.rowHammerThreshold = 2000;
    chunked.refreshChunkRows = 1;
    ControllerConfig atomic = chunked;
    atomic.refreshChunkRows = 0;

    auto run = [](const ControllerConfig &config) {
        ChannelController ctrl(config);
        Cycle t{};
        for (int i = 0; i < 4000; ++i) {
            const Row row{i % 2 ? 100u : 5000u};
            const ServiceResult r = ctrl.access(t, 0, row, false);
            t = r.completion;
        }
        return std::pair<std::uint64_t, Cycle>(
            ctrl.victimRowsRefreshed(), t);
    };

    const auto [rows_chunked, end_chunked] = run(chunked);
    const auto [rows_atomic, end_atomic] = run(atomic);
    EXPECT_GT(rows_chunked, 0u);
    EXPECT_EQ(rows_chunked, rows_atomic);
    // Same total work: end times agree within one burst's length.
    const double ratio = static_cast<double>(end_chunked.value()) /
                         static_cast<double>(end_atomic.value());
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Controller, DebtDoesNotLeakAcrossBanks)
{
    ControllerConfig config = baseConfig(schemes::SchemeKind::Cbt);
    config.scheme.rowHammerThreshold = 2000;
    ChannelController ctrl(config);
    // Hammer bank 0 until bursts occur.
    Cycle t{};
    for (int i = 0; i < 4000; ++i)
        t = ctrl.access(t, 0, Row{i % 2 ? 100u : 5000u}, false)
                .completion;
    ASSERT_GT(ctrl.victimRowsRefreshed(), 0u);
    // Bank 1 is untouched: its first access completes with cold-start
    // latency, not burdened by bank 0's refresh debt.
    const ServiceResult r = ctrl.access(t, 1, Row{100}, false);
    EXPECT_LE(r.completion - t,
              config.timing.cRC() + config.timing.cRCD() +
                  config.timing.cCL() + config.timing.cBL() +
                  config.timing.cRFC());
}

TEST(Controller, FawCapsMultiBankActRate)
{
    // Blast single-access row misses across all 16 banks as fast as
    // possible: the rank's four-activation window, not tRC, becomes
    // the limiter, so 16 ACTs take at least 3 x tFAW.
    ControllerConfig config = baseConfig();
    ChannelController ctrl(config);
    Cycle last_completion{};
    for (unsigned b = 0; b < 16; ++b) {
        const ServiceResult r =
            ctrl.access(Cycle{0}, b, Row{100}, false);
        last_completion = std::max(last_completion, r.completion);
    }
    const Cycle data_path = config.timing.cRCD() +
                            config.timing.cCL() +
                            config.timing.cBL();
    EXPECT_GE(last_completion,
              config.timing.cFAW() * 3 + data_path);
}

TEST(Controller, RowHitRateTracksAccessPattern)
{
    ControllerConfig config = baseConfig();
    config.pageHitLimit = 1000;
    ChannelController ctrl(config);
    Cycle t{};
    for (int i = 0; i < 100; ++i) {
        const ServiceResult r = ctrl.access(t, 0, Row{100}, false);
        t = r.completion;
    }
    EXPECT_GT(ctrl.rowHitRate(), 0.9);
    EXPECT_EQ(ctrl.requestCount(), 100u);
}

} // namespace
} // namespace mem
} // namespace graphene
