/**
 * @file
 * Fault-injection events on the observability timeline: the
 * degradation harness's corruptions, scrub repairs, and crossing
 * refreshes must share one event stream, so a post-mortem can see an
 * injected bit-flip land between the corruption and the scrub that
 * repaired it. Under GRAPHENE_OBS_OFF the harness must run untraced
 * with identical results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "inject/degradation.hh"
#include "obs/obs.hh"

namespace graphene {
namespace inject {
namespace {

DegradationConfig
hardenedCampaign()
{
    DegradationConfig config;
    config.model.tableEntries = 8;
    config.model.threshold = 64;
    config.model.numRows = 512;
    config.model.streamLength = 6000;
    config.model.resetEvery = 3000;
    config.harden = true;
    config.scrubEvery = 32;
    config.plan.faults = 6;
    config.plan.sites = {FaultSite::EntryCount};
    config.plan.seed = 5;
    return config;
}

TEST(FaultTrace, DegradationRunsUnchangedWithASinkAttached)
{
    DegradationConfig untraced = hardenedCampaign();
    const std::string baseline =
        runDegradation(untraced).summary();

    obs::Sink sink;
    DegradationConfig traced = hardenedCampaign();
    traced.obs = &sink;
    const std::string observed = runDegradation(traced).summary();

    // The sink never feeds back: the deterministic summary is
    // byte-identical with and without tracing.
    EXPECT_EQ(baseline, observed);
}

#ifndef GRAPHENE_OBS_OFF

TEST(FaultTrace, InjectedFlipAppearsBeforeTheScrubThatFollows)
{
    obs::Sink sink;
    DegradationConfig config = hardenedCampaign();
    config.obs = &sink;
    const DegradationReport report = runDegradation(config);
    ASSERT_GT(report.totalFaultsApplied(), 0u);

    const auto events = sink.tracer.merged();
    ASSERT_FALSE(events.empty());

    // Restrict to the first stream family's track (bank 0).
    std::vector<obs::Event> track;
    for (const auto &e : events)
        if (e.bank == 0)
            track.push_back(e);

    const auto fault = std::find_if(
        track.begin(), track.end(), [](const obs::Event &e) {
            return e.kind == obs::EventKind::FaultInject;
        });
    ASSERT_NE(fault, track.end())
        << "state-fault application must emit a fault-inject event";
    EXPECT_EQ(fault->arg,
              static_cast<std::uint32_t>(FaultSite::EntryCount));

    // The hardened table scrubs every scrubEvery ACTs, so a scrub
    // event follows the injected flip on the same timeline.
    const auto scrub = std::find_if(
        fault, track.end(), [](const obs::Event &e) {
            return e.kind == obs::EventKind::Scrub;
        });
    ASSERT_NE(scrub, track.end())
        << "a scrub pass must appear after the injected bit-flip";
    EXPECT_GE(scrub->cycle.value(), fault->cycle.value());
}

TEST(FaultTrace, EventTotalsMatchTheReport)
{
    obs::Sink sink;
    DegradationConfig config = hardenedCampaign();
    config.obs = &sink;
    const DegradationReport report = runDegradation(config);

    std::uint64_t fault_events = 0, reset_events = 0;
    for (const auto &e : sink.tracer.merged()) {
        if (e.kind == obs::EventKind::FaultInject)
            ++fault_events;
        else if (e.kind == obs::EventKind::TrackerReset)
            ++reset_events;
    }
    // State-only sites: every applied fault emits exactly one event.
    EXPECT_EQ(fault_events, report.totalFaultsApplied());
    // Each family wipes its table at every reset_every boundary.
    const std::uint64_t boundaries = config.model.streamLength /
                                     config.model.resetEvery;
    EXPECT_EQ(reset_events, boundaries * report.rows.size());

    // Metrics share the sink: the scalar totals agree with the
    // per-row report fields.
    EXPECT_DOUBLE_EQ(
        sink.metrics.totals().get("inject.faults"),
        static_cast<double>(report.totalFaultsApplied()));
    std::uint64_t missed = 0;
    for (const auto &row : report.rows)
        missed += row.missedRefreshes;
    EXPECT_DOUBLE_EQ(
        sink.metrics.totals().get("inject.missed_refreshes"),
        static_cast<double>(missed));
}

TEST(FaultTrace, TraceIsDeterministicAcrossRuns)
{
    std::string exports[2];
    for (int r = 0; r < 2; ++r) {
        obs::Sink sink;
        DegradationConfig config = hardenedCampaign();
        config.obs = &sink;
        runDegradation(config);
        std::ostringstream os;
        sink.tracer.writeEventsJsonl(
            os, Cycle{config.model.resetEvery});
        exports[r] = os.str();
    }
    EXPECT_FALSE(exports[0].empty());
    EXPECT_EQ(exports[0], exports[1]);
}

#endif // GRAPHENE_OBS_OFF

} // namespace
} // namespace inject
} // namespace graphene
