/**
 * @file
 * Tests for the windowed metrics registry: per-window delta series,
 * the conservation invariant (sum of window deltas == end-of-run
 * total, for scalars and histogram sample counts), max-monotonic
 * window attribution, and the JSONL exporter. Under GRAPHENE_OBS_OFF
 * only the compile-out contract is asserted.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/trace.hh"

namespace graphene {
namespace obs {
namespace {

#ifdef GRAPHENE_OBS_OFF

TEST(ObsCompileOut, AllStatefulTypesAreEmpty)
{
    static_assert(std::is_empty_v<Tracer>,
                  "OBS_OFF tracer must be zero-size");
    static_assert(std::is_empty_v<MetricsRegistry>,
                  "OBS_OFF metrics registry must be zero-size");
    static_assert(std::is_empty_v<Probe>,
                  "OBS_OFF probe must be zero-size");
    EXPECT_FALSE(kEnabled);

    // The no-op API stays callable so probe sites need no guards.
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    m.add(Cycle{1}, "x");
    m.finish();
    EXPECT_TRUE(m.windows().empty());
    EXPECT_EQ(m.windowSum("x"), 0.0);
}

#else // tracing compiled in

TEST(MetricsRegistry, ClosesWindowsAtBoundaries)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    m.add(Cycle{10}, "acts");
    m.add(Cycle{50}, "acts");
    m.add(Cycle{150}, "acts"); // closes window 0
    m.add(Cycle{320}, "acts"); // closes windows 1 and 2
    m.finish();

    ASSERT_EQ(m.windows().size(), 4u);
    EXPECT_EQ(m.windows()[0].window, 0u);
    EXPECT_DOUBLE_EQ(m.windows()[0].deltas.at("acts"), 2.0);
    EXPECT_DOUBLE_EQ(m.windows()[1].deltas.at("acts"), 1.0);
    // Window 2 saw nothing; its delta is an explicit zero (known
    // statistics are reported in every window once created).
    EXPECT_DOUBLE_EQ(m.windows()[2].deltas.at("acts"), 0.0);
    EXPECT_DOUBLE_EQ(m.windows()[3].deltas.at("acts"), 1.0);
}

TEST(MetricsRegistry, ScalarConservation)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{64});
    double expected = 0.0;
    for (std::uint64_t c = 0; c < 1000; c += 7) {
        const double v = 1.0 + static_cast<double>(c % 3);
        m.add(Cycle{c}, "work", v);
        expected += v;
    }
    m.finish();

    EXPECT_DOUBLE_EQ(m.totals().get("work"), expected);
    // The regression the windowed series exists to guard: deltas must
    // add back up to the end-of-run total.
    EXPECT_DOUBLE_EQ(m.windowSum("work"), expected);
}

TEST(MetricsRegistry, HistogramSampleConservation)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{50});
    std::uint64_t samples = 0;
    for (std::uint64_t c = 0; c < 400; c += 3) {
        m.sample(Cycle{c}, "lat", static_cast<double>(c % 90), 16,
                 64.0);
        ++samples;
    }
    m.finish();

    const Histogram *h = m.totals().findHistogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->samples(), samples);
    // Histogram windows are tracked as "<name>.samples" deltas; the
    // overflowed samples (>= 64.0 here) must be conserved too.
    EXPECT_GT(h->overflow(), 0u);
    EXPECT_DOUBLE_EQ(m.windowSum("lat.samples"),
                     static_cast<double>(samples));
}

TEST(MetricsRegistry, WindowAttributionIsMaxMonotonic)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    m.add(Cycle{250}, "x"); // opens window 2, closing 0 and 1
    m.add(Cycle{10}, "x");  // late update: stays in window 2
    m.finish();

    ASSERT_EQ(m.windows().size(), 3u);
    EXPECT_EQ(m.windows()[0].deltas.count("x"), 0u);
    EXPECT_EQ(m.windows()[1].deltas.count("x"), 0u);
    EXPECT_DOUBLE_EQ(m.windows()[2].deltas.at("x"), 2.0);
    EXPECT_DOUBLE_EQ(m.windowSum("x"), 2.0);
}

TEST(MetricsRegistry, ZeroWindowLengthKeepsOneWindow)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{});
    m.add(Cycle{5}, "x");
    m.add(Cycle{100000}, "x");
    m.finish();
    ASSERT_EQ(m.windows().size(), 1u);
    EXPECT_DOUBLE_EQ(m.windows()[0].deltas.at("x"), 2.0);
}

TEST(MetricsRegistry, FinishIsIdempotent)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{10});
    m.add(Cycle{3}, "x");
    m.finish();
    m.finish();
    EXPECT_EQ(m.windows().size(), 1u);
}

TEST(MetricsRegistry, WriteJsonlHasHeaderWindowsAndTotals)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    m.add(Cycle{10}, "acts", 3.0);
    m.add(Cycle{150}, "acts", 2.0);
    m.finish();

    std::ostringstream os;
    m.writeJsonl(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("graphene-obs-metrics-v1"),
              std::string::npos);
    EXPECT_NE(text.find("\"acts\":3"), std::string::npos);
    EXPECT_NE(text.find("\"totals\":true"), std::string::npos);

    // Byte-determinism: exporting twice yields identical bytes.
    std::ostringstream again;
    m.writeJsonl(again);
    EXPECT_EQ(text, again.str());
}

TEST(MetricsRegistry, WriteJsonlPinsSchemaAndEscapesNames)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    // Metric names are arbitrary caller strings: quotes, backslashes
    // and colons must survive the JSONL round trip (the rollup
    // reader's round-trip test parses this back).
    m.add(Cycle{10}, "weird\"name\\with:stuff", 2.0);
    m.finish();

    std::ostringstream os;
    m.writeJsonl(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"schema\":1"), std::string::npos);
    EXPECT_NE(text.find("\\\"name\\\\with:stuff"),
              std::string::npos);
    // The raw unescaped name must not appear anywhere.
    EXPECT_EQ(text.find("weird\"name\\with"), std::string::npos);
}

TEST(MetricsRegistry, TotalsCarryTailQuantiles)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    for (std::uint64_t c = 0; c < 100; ++c)
        m.sample(Cycle{c}, "lat", static_cast<double>(c), 10, 100.0);
    m.finish();

    std::ostringstream os;
    m.writeJsonl(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"lat.p50\":"), std::string::npos);
    EXPECT_NE(text.find("\"lat.p95\":"), std::string::npos);
    EXPECT_NE(text.find("\"lat.p99\":"), std::string::npos);
    EXPECT_NE(text.find("\"lat.samples\":100"), std::string::npos);
}

TEST(Probe, DetachedProbeIsSafe)
{
    const Probe probe;
    probe.emit(Cycle{1}, EventKind::Act, Row{3});
    probe.count(Cycle{1}, "x");
    probe.sample(Cycle{1}, "h", 1.0, 4, 8.0);
    SUCCEED();
}

TEST(Probe, RoutesToTracerAndMetrics)
{
    Tracer tracer(16);
    MetricsRegistry metrics;
    metrics.beginWindows(Cycle{100});
    const Probe probe(&tracer, &metrics, 3);

    probe.emit(Cycle{7}, EventKind::VictimRefresh, Row{9}, 2);
    probe.count(Cycle{7}, "scheme.victim_refresh_events");
    metrics.finish();

    ASSERT_EQ(tracer.banks(), 4u); // banks 0..3 allocated
    ASSERT_EQ(tracer.ring(3).size(), 1u);
    const Event &e = tracer.ring(3).events()[0];
    EXPECT_EQ(e.kind, EventKind::VictimRefresh);
    EXPECT_EQ(e.row, Row{9});
    EXPECT_EQ(e.arg, 2u);
    EXPECT_EQ(e.bank, 3u);
    EXPECT_DOUBLE_EQ(
        metrics.totals().get("scheme.victim_refresh_events"), 1.0);
}

#endif // GRAPHENE_OBS_OFF

} // namespace
} // namespace obs
} // namespace graphene
