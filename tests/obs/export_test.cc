/**
 * @file
 * Tests for the telemetry exporters (DESIGN.md §16): the status
 * snapshot's render contract (deterministic bytes, one session
 * object per line, no volatile fields), finalize()'s sort+tally,
 * atomic file rotation, Prometheus name sanitisation, and the text
 * exposition's family grouping. Under GRAPHENE_OBS_OFF only the
 * no-op contract is asserted.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "obs/export.hh"

namespace graphene {
namespace obs {
namespace {

namespace fs = std::filesystem;

ServiceStatus
sampleStatus()
{
    ServiceStatus status;
    status.quantumCycles = 500000;
    SessionStatus a;
    a.id = "t01";
    a.scheme = "Graphene";
    a.source = "pattern:s1";
    a.state = "done";
    a.lastWindow = 3;
    a.jsonlLines = 5;
    a.bufferedRows = 17;
    a.chunkRows = 256;
    a.alertsFired = 2;
    SessionStatus b;
    b.id = "t00";
    b.scheme = "PARA";
    b.source = "pattern:uniform";
    b.state = "failed";
    b.failure = "Io";
    status.sessions.push_back(a);
    status.sessions.push_back(b);
    status.finalize();
    return status;
}

#ifdef GRAPHENE_OBS_OFF

TEST(ExportCompileOut, WritersAreNoOps)
{
    // The status structs keep their shape (the driver fills them
    // either way); only the writers vanish.
    ServiceStatus status = sampleStatus();
    EXPECT_EQ(status.done, 1u);
    EXPECT_TRUE(renderStatusJson(status).empty());
    EXPECT_TRUE(writeStatusJson("/nonexistent/x.json", status).ok());
    EXPECT_TRUE(promName("a b").empty());
}

#else // telemetry compiled in

TEST(ServiceStatus, FinalizeSortsAndTallies)
{
    const ServiceStatus status = sampleStatus();
    ASSERT_EQ(status.sessions.size(), 2u);
    EXPECT_EQ(status.sessions[0].id, "t00"); // sorted by id
    EXPECT_EQ(status.sessions[1].id, "t01");
    EXPECT_EQ(status.done, 1u);
    EXPECT_EQ(status.failed, 1u);
    EXPECT_EQ(status.running, 0u);
    EXPECT_EQ(status.pending, 0u);
}

TEST(RenderStatusJson, OneSessionPerLineAndDeterministic)
{
    const ServiceStatus status = sampleStatus();
    const std::string text = renderStatusJson(status);
    EXPECT_EQ(text, renderStatusJson(status));

    EXPECT_NE(text.find("\"format\":\"graphene-serve-status-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"schema\":1"), std::string::npos);
    EXPECT_NE(text.find("\"failure\":\"Io\""), std::string::npos);
    // A healthy session carries no failure key at all.
    EXPECT_EQ(text.find("\"failure\":\"\""), std::string::npos);

    // Layout contract: exactly one '{"id":' line per session, so
    // grep/serve_dash's flat extractors work without a JSON parser.
    std::istringstream in(text);
    std::string line;
    std::size_t idLines = 0;
    while (std::getline(in, line))
        idLines += line.rfind("{\"id\":", 0) == 0;
    EXPECT_EQ(idLines, status.sessions.size());
}

TEST(WriteStatusJson, RotatesAtomicallyAndSidecarIsSeparate)
{
    int uniq = 0;
    const fs::path dir =
        fs::temp_directory_path() /
        ("export_test_" +
         std::to_string(reinterpret_cast<std::uintptr_t>(&uniq)));
    fs::create_directories(dir);
    const std::string path = (dir / "status.json").string();

    const ServiceStatus status = sampleStatus();
    ASSERT_TRUE(writeStatusJson(path, status).ok());
    std::ifstream is(path, std::ios::binary);
    const std::string bytes(std::istreambuf_iterator<char>(is),
                            std::istreambuf_iterator<char>{});
    EXPECT_EQ(bytes, renderStatusJson(status));
    // No rename temporary may linger next to the artifact.
    std::size_t entries = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);

    // The volatile sidecar is a different file: wall-clock and jobs
    // never contaminate the deterministic artifact.
    const std::string meta = (dir / "status.meta.json").string();
    ASSERT_TRUE(writeStatusSidecar(meta, 1234, 16, 7).ok());
    std::ifstream ms(meta);
    std::string metaLine;
    ASSERT_TRUE(std::getline(ms, metaLine));
    EXPECT_NE(metaLine.find("\"volatile\":true"), std::string::npos);
    EXPECT_NE(metaLine.find("\"unix_ms\":1234"), std::string::npos);
    EXPECT_EQ(renderStatusJson(status).find("unix_ms"),
              std::string::npos);
    fs::remove_all(dir);
}

TEST(PromName, SanitisesToMetricAlphabet)
{
    EXPECT_EQ(promName("serve.alerts_fired"), "serve_alerts_fired");
    EXPECT_EQ(promName("a-b c"), "a_b_c");
    EXPECT_EQ(promName("ns:ok_9"), "ns:ok_9");
    // A leading digit is illegal in the exposition format.
    EXPECT_EQ(promName("9lives"), "_9lives");
    EXPECT_EQ(promName(""), "");
}

TEST(WriteExposition, GroupsFamiliesAndEmitsGauges)
{
    Rollup rollup;
    SessionSeries s1;
    s1.tenant = "t00";
    s1.totals["acts"] = 10.0;
    s1.haveTotals = true;
    SessionSeries s2;
    s2.tenant = "t01";
    s2.totals["acts"] = 32.0;
    s2.haveTotals = true;
    rollup.add(s1);
    rollup.add(s2);

    std::ostringstream os;
    writeExposition(os, rollup, sampleStatus());
    const std::string text = os.str();

    // One HELP/TYPE pair per family, every tenant labelled under it.
    EXPECT_EQ(text.find("# TYPE graphene_serve_acts_total counter"),
              text.rfind("# TYPE graphene_serve_acts_total counter"));
    EXPECT_NE(text.find("graphene_serve_acts_total{tenant=\"t00\"} "
                        "10"),
              std::string::npos);
    EXPECT_NE(text.find("graphene_serve_acts_total{tenant=\"t01\"} "
                        "32"),
              std::string::npos);
    EXPECT_NE(text.find("graphene_fleet_acts_total 42"),
              std::string::npos);
    EXPECT_NE(
        text.find("graphene_serve_sessions{state=\"failed\"} 1"),
        std::string::npos);
}

#endif // GRAPHENE_OBS_OFF

} // namespace
} // namespace obs
} // namespace graphene
