/**
 * @file
 * Tests for the cross-session telemetry rollup (DESIGN.md §16):
 * the graphene-obs-metrics-v1 round trip (including defensively
 * escaped metric names — the writer and reader must agree on the
 * quoting rules), the serve-artifact reader, the conservation audit,
 * fleet merging, schema rejection, and byte-deterministic export.
 * Under GRAPHENE_OBS_OFF only the compile-out contract is asserted.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "obs/metrics.hh"
#include "obs/rollup.hh"

namespace graphene {
namespace obs {
namespace {

namespace fs = std::filesystem;

class TempFile
{
  public:
    explicit TempFile(const std::string &tag, const std::string &text)
    {
        _path = (fs::temp_directory_path() /
                 ("rollup_" + tag + "_" +
                  std::to_string(
                      reinterpret_cast<std::uintptr_t>(this))))
                    .string();
        std::ofstream os(_path, std::ios::trunc);
        os << text;
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

#ifdef GRAPHENE_OBS_OFF

TEST(RollupCompileOut, EmptyTypeAndEmptyReads)
{
    static_assert(std::is_empty_v<Rollup>,
                  "OBS_OFF rollup must be zero-size");
    const Result<SessionSeries> series =
        readMetricsJsonl("/nonexistent", "t");
    ASSERT_TRUE(series.ok());
    EXPECT_TRUE(series.value().windows.empty());

    Rollup rollup;
    rollup.add(SessionSeries{});
    EXPECT_EQ(rollup.tenantCount(), 0u);
    std::ostringstream os;
    rollup.writeJsonl(os);
    EXPECT_TRUE(os.str().empty());
}

#else // telemetry compiled in

TEST(ReadMetricsJsonl, RoundTripsRegistryIncludingNastyNames)
{
    MetricsRegistry m;
    m.beginWindows(Cycle{100});
    // Names with JSON metacharacters: the writer escapes, the reader
    // unescapes, and the round trip must be exact (satellite S3).
    const std::string nasty = "weird\"name\\with:stuff";
    m.add(Cycle{10}, nasty, 2.0);
    m.add(Cycle{10}, "acts", 3.0);
    m.add(Cycle{150}, "acts", 4.0);
    m.sample(Cycle{20}, "lat", 5.0, 8, 32.0);
    m.finish();

    std::ostringstream os;
    m.writeJsonl(os);
    TempFile file("roundtrip", os.str());

    const Result<SessionSeries> read =
        readMetricsJsonl(file.path(), "t0");
    ASSERT_TRUE(read.ok()) << read.error().describe();
    const SessionSeries &series = read.value();
    EXPECT_EQ(series.tenant, "t0");
    EXPECT_EQ(series.windowCycles, 100u);
    ASSERT_EQ(series.windows.size(), 2u);
    EXPECT_DOUBLE_EQ(series.windows[0].values.at(nasty), 2.0);
    EXPECT_DOUBLE_EQ(series.windows[0].values.at("acts"), 3.0);
    EXPECT_DOUBLE_EQ(series.windows[1].values.at("acts"), 4.0);
    ASSERT_TRUE(series.haveTotals);
    EXPECT_DOUBLE_EQ(series.totals.at(nasty), 2.0);
    EXPECT_DOUBLE_EQ(series.totals.at("acts"), 7.0);
    // Histogram tails surface as synthesized total-only keys.
    EXPECT_EQ(series.totals.count("lat.p99"), 1u);

    // The parsed series must agree with the in-memory one.
    const SessionSeries direct = seriesFromRegistry(m, "t0");
    ASSERT_EQ(direct.windows.size(), series.windows.size());
    for (std::size_t i = 0; i < direct.windows.size(); ++i)
        EXPECT_EQ(direct.windows[i].values, series.windows[i].values)
            << "window " << i;
    EXPECT_EQ(direct.totals, series.totals);

    // And conservation holds for the shared keys.
    EXPECT_TRUE(checkConservation(series).ok());
}

TEST(ReadMetricsJsonl, RejectsForeignAndFutureSchemas)
{
    TempFile foreign("foreign", "{\"header\":true,\"format\":"
                                "\"something-else\",\"schema\":1}\n");
    const Result<SessionSeries> bad =
        readMetricsJsonl(foreign.path(), "t");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::Parse);

    TempFile future(
        "future",
        "{\"header\":true,\"format\":\"graphene-obs-metrics-v1\","
        "\"schema\":999,\"window_cycles\":10,\"windows\":0}\n");
    const Result<SessionSeries> newer =
        readMetricsJsonl(future.path(), "t");
    ASSERT_FALSE(newer.ok());
    EXPECT_EQ(newer.error().code(), ErrorCode::Unsupported);

    const Result<SessionSeries> missing =
        readMetricsJsonl("/nonexistent/metrics.jsonl", "t");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code(), ErrorCode::Io);
}

TEST(ReadServeJsonl, WindowsSummaryAndErrorLines)
{
    TempFile file(
        "serve",
        "{\"window\":0,\"start\":0,\"end\":10,\"acts\":5,"
        "\"bit_flips\":0,\"buffered_rows\":3}\n"
        "{\"window\":1,\"start\":10,\"end\":20,\"acts\":7,"
        "\"bit_flips\":1,\"buffered_rows\":2}\n"
        "{\"summary\":1,\"windows\":2,\"acts\":12,\"bit_flips\":1}\n");
    const Result<SessionSeries> read =
        readServeJsonl(file.path(), "t0");
    ASSERT_TRUE(read.ok()) << read.error().describe();
    const SessionSeries &series = read.value();
    ASSERT_EQ(series.windows.size(), 2u);
    EXPECT_DOUBLE_EQ(series.windows[1].values.at("acts"), 7.0);
    // Absolute stamps are cumulative, not deltas: never ingested.
    EXPECT_EQ(series.windows[0].values.count("start"), 0u);
    EXPECT_EQ(series.windows[0].values.count("end"), 0u);
    ASSERT_TRUE(series.haveTotals);
    EXPECT_DOUBLE_EQ(series.totals.at("acts"), 12.0);
    // The window count is bookkeeping, not a metric.
    EXPECT_EQ(series.totals.count("windows"), 0u);
    EXPECT_FALSE(series.failed);

    TempFile failed("servefail",
                    "{\"window\":0,\"acts\":5}\n"
                    "{\"error\":\"Io\",\"detail\":\"lost\"}\n");
    const Result<SessionSeries> sad =
        readServeJsonl(failed.path(), "t1");
    ASSERT_TRUE(sad.ok());
    EXPECT_TRUE(sad.value().failed);
    EXPECT_EQ(sad.value().error, "Io");
}

TEST(CheckConservation, ListsEveryViolation)
{
    SessionSeries series;
    series.tenant = "t";
    WindowDelta w;
    w.window = 0;
    w.values["a"] = 1.0;
    w.values["b"] = 2.0;
    series.windows.push_back(w);
    series.haveTotals = true;
    series.totals["a"] = 1.0; // conserved
    series.totals["b"] = 5.0; // violated
    series.totals["c"] = 9.0; // totals-only: not checkable, skipped

    const Result<void> audit = checkConservation(series);
    ASSERT_FALSE(audit.ok());
    const std::string what = audit.error().describe();
    EXPECT_NE(what.find("b"), std::string::npos);
    EXPECT_EQ(what.find("\"a\""), std::string::npos);
}

SessionSeries
mkSeries(const std::string &tenant, double scale,
         std::size_t windows)
{
    SessionSeries series;
    series.tenant = tenant;
    series.windowCycles = 100;
    for (std::size_t i = 0; i < windows; ++i) {
        WindowDelta w;
        w.window = i;
        w.values["acts"] = scale * static_cast<double>(i + 1);
        series.windows.push_back(w);
        series.totals["acts"] += w.values["acts"];
    }
    series.haveTotals = true;
    return series;
}

TEST(Rollup, FleetSumsAcrossUnevenTenants)
{
    Rollup rollup;
    rollup.add(mkSeries("b", 1.0, 3));
    rollup.add(mkSeries("a", 10.0, 2)); // ends one window early

    EXPECT_EQ(rollup.tenantCount(), 2u);
    ASSERT_NE(rollup.find("a"), nullptr);
    EXPECT_EQ(rollup.find("nope"), nullptr);

    // tenants() is sorted by id, independent of insertion order.
    EXPECT_EQ(rollup.tenants().begin()->first, "a");

    const auto fleet = rollup.fleet();
    ASSERT_EQ(fleet.size(), 3u);
    EXPECT_DOUBLE_EQ(fleet[0].values.at("acts"), 11.0);
    EXPECT_DOUBLE_EQ(fleet[1].values.at("acts"), 22.0);
    // Tenant "a" ended: contributes nothing to window 2.
    EXPECT_DOUBLE_EQ(fleet[2].values.at("acts"), 3.0);

    EXPECT_DOUBLE_EQ(rollup.fleetTotals().at("acts"), 36.0);
}

TEST(Rollup, WriteJsonlIsByteDeterministic)
{
    Rollup rollup;
    rollup.add(mkSeries("t1", 2.0, 2));
    rollup.add(mkSeries("t0", 3.0, 2));

    std::ostringstream first, second;
    rollup.writeJsonl(first);
    rollup.writeJsonl(second);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("graphene-obs-rollup-v1"),
              std::string::npos);

    // Insertion order must not leak into the artifact.
    Rollup reordered;
    reordered.add(mkSeries("t0", 3.0, 2));
    reordered.add(mkSeries("t1", 2.0, 2));
    std::ostringstream third;
    reordered.writeJsonl(third);
    EXPECT_EQ(first.str(), third.str());
}

#endif // GRAPHENE_OBS_OFF

} // namespace
} // namespace obs
} // namespace graphene
