/**
 * @file
 * Tests for the declarative alert rules (DESIGN.md §16): the grammar
 * (all errors collected, not just the first), the `chunk` threshold
 * symbol, streak semantics (`for N` fires once per streak, missing
 * metrics break streaks), the offline/live equivalence, and the
 * alerts.jsonl artifact. Under GRAPHENE_OBS_OFF only the compile-out
 * contract is asserted.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

#include "obs/alerts.hh"

namespace graphene {
namespace obs {
namespace {

#ifdef GRAPHENE_OBS_OFF

TEST(AlertsCompileOut, EmptyEngineNeverFires)
{
    static_assert(std::is_empty_v<AlertEngine>,
                  "OBS_OFF alert engine must be zero-size");
    const Result<std::vector<AlertRule>> rules =
        parseAlertRules("broken line that would not parse");
    ASSERT_TRUE(rules.ok());
    EXPECT_TRUE(rules.value().empty());

    AlertEngine engine({}, 0.0);
    EXPECT_TRUE(engine.onWindow(0, {{"x", 1.0}}).empty());
    EXPECT_EQ(engine.firedCount(), 0u);
}

#else // telemetry compiled in

TEST(ParseAlertRules, GrammarAndDescribeRoundTrip)
{
    const Result<std::vector<AlertRule>> parsed = parseAlertRules(
        "# watchers for the soak run\n"
        "\n"
        "missed: missed_victim_rate > 0 for 2\n"
        "full: peak_buffered >= chunk\n"
        "quiet: acts == 0\n");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    const std::vector<AlertRule> &rules = parsed.value();
    ASSERT_EQ(rules.size(), 3u);

    EXPECT_EQ(rules[0].name, "missed");
    EXPECT_EQ(rules[0].metric, "missed_victim_rate");
    EXPECT_EQ(rules[0].op, AlertOp::Gt);
    EXPECT_DOUBLE_EQ(rules[0].threshold, 0.0);
    EXPECT_EQ(rules[0].forWindows, 2u);
    EXPECT_EQ(rules[0].describe(),
              "missed: missed_victim_rate > 0 for 2");

    EXPECT_TRUE(rules[1].thresholdIsChunk);
    EXPECT_EQ(rules[1].op, AlertOp::Ge);
    EXPECT_EQ(rules[1].describe(), "full: peak_buffered >= chunk");

    EXPECT_EQ(rules[2].op, AlertOp::Eq);
    EXPECT_EQ(rules[2].forWindows, 1u);
    EXPECT_EQ(rules[2].describe(), "quiet: acts == 0");

    // describe() re-parses to the same rule (the round trip the
    // alerts.jsonl spec lines rely on).
    for (const AlertRule &rule : rules) {
        const auto again = parseAlertRules(rule.describe() + "\n");
        ASSERT_TRUE(again.ok());
        ASSERT_EQ(again.value().size(), 1u);
        EXPECT_EQ(again.value()[0].describe(), rule.describe());
    }
}

TEST(ParseAlertRules, CollectsEveryBadLine)
{
    const Result<std::vector<AlertRule>> parsed = parseAlertRules(
        "ok: acts > 1\n"
        "nocolon acts > 1\n"
        "badop: acts ~ 1\n"
        "badnum: acts > banana\n"
        "badfor: acts > 1 for 0\n"
        "ok: acts < 5\n"); // duplicate name
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), ErrorCode::Parse);
    const std::string what = parsed.error().describe();
    // Every malformed line is reported, with its line number.
    EXPECT_NE(what.find("2"), std::string::npos);
    EXPECT_NE(what.find("~"), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
    EXPECT_NE(what.find("for"), std::string::npos);
    EXPECT_NE(what.find("duplicate"), std::string::npos);
}

TEST(AlertEngine, ForNFiresOncePerStreak)
{
    const auto rules =
        parseAlertRules("hot: acts > 10 for 2\n").value();
    AlertEngine engine(rules, 0.0);

    // Window 0 satisfies (streak 1): no fire yet.
    EXPECT_TRUE(engine.onWindow(0, {{"acts", 20.0}}).empty());
    // Window 1 completes the streak: fires exactly now.
    ASSERT_EQ(engine.onWindow(1, {{"acts", 30.0}}).size(), 1u);
    // Window 2 continues the same streak: no re-fire.
    EXPECT_TRUE(engine.onWindow(2, {{"acts", 40.0}}).empty());
    // Broken, then rebuilt: fires again at the new streak's end.
    EXPECT_TRUE(engine.onWindow(3, {{"acts", 1.0}}).empty());
    EXPECT_TRUE(engine.onWindow(4, {{"acts", 50.0}}).empty());
    ASSERT_EQ(engine.onWindow(5, {{"acts", 60.0}}).size(), 1u);
    EXPECT_EQ(engine.firedCount(), 2u);
}

TEST(AlertEngine, MissingMetricBreaksStreak)
{
    const auto rules =
        parseAlertRules("hot: acts > 10 for 2\n").value();
    AlertEngine engine(rules, 0.0);
    EXPECT_TRUE(engine.onWindow(0, {{"acts", 20.0}}).empty());
    // The metric vanished: a window without it cannot satisfy.
    EXPECT_TRUE(engine.onWindow(1, {{"other", 1.0}}).empty());
    EXPECT_TRUE(engine.onWindow(2, {{"acts", 20.0}}).empty());
    ASSERT_EQ(engine.onWindow(3, {{"acts", 20.0}}).size(), 1u);
}

TEST(AlertEngine, ChunkSymbolResolvesPerSession)
{
    const auto rules =
        parseAlertRules("full: buffered_rows >= chunk\n").value();
    AlertEngine small(rules, 4.0);
    AlertEngine large(rules, 100.0);
    EXPECT_EQ(small.onWindow(0, {{"buffered_rows", 5.0}}).size(), 1u);
    EXPECT_TRUE(large.onWindow(0, {{"buffered_rows", 5.0}}).empty());
}

TEST(EvaluateSeries, MatchesLiveEngineAndOrdersEvents)
{
    const auto rules = parseAlertRules("hot: acts > 10 for 2\n"
                                       "quiet: acts == 0\n")
                           .value();
    SessionSeries series;
    series.tenant = "t3";
    const double acts[] = {20.0, 30.0, 0.0, 40.0, 50.0};
    for (std::size_t i = 0; i < 5; ++i) {
        WindowDelta w;
        w.window = i;
        w.values["acts"] = acts[i];
        series.windows.push_back(w);
    }

    const std::vector<AlertEvent> events =
        evaluateSeries(rules, series, 0.0);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].rule, "hot");
    EXPECT_EQ(events[0].window, 1u);
    EXPECT_DOUBLE_EQ(events[0].value, 30.0);
    EXPECT_EQ(events[1].rule, "quiet");
    EXPECT_EQ(events[1].window, 2u);
    EXPECT_EQ(events[2].rule, "hot");
    EXPECT_EQ(events[2].window, 4u);
    for (const AlertEvent &e : events)
        EXPECT_EQ(e.tenant, "t3");

    // Same semantics as feeding the live engine window by window.
    AlertEngine live(rules, 0.0);
    std::size_t fired = 0;
    for (const auto &w : series.windows)
        fired += live.onWindow(w.window, w.values).size();
    EXPECT_EQ(fired, events.size());
}

TEST(WriteAlertsJsonl, HeaderSpecsEventsAndSummary)
{
    const auto rules = parseAlertRules("hot: acts > 10\n"
                                       "cold: acts == 0\n")
                           .value();
    std::vector<AlertEvent> events;
    events.push_back({"t0", "hot", 2, 42.0});

    std::ostringstream os;
    writeAlertsJsonl(os, rules, events);
    const std::string text = os.str();
    EXPECT_NE(text.find("graphene-obs-alerts-v1"), std::string::npos);
    EXPECT_NE(text.find("hot: acts > 10"), std::string::npos);
    EXPECT_NE(text.find("\"tenant\":\"t0\""), std::string::npos);
    EXPECT_NE(text.find("\"window\":2"), std::string::npos);
    // The summary counts every rule, including never-fired ones.
    EXPECT_NE(text.find("\"cold\":0"), std::string::npos);
    EXPECT_NE(text.find("\"hot\":1"), std::string::npos);

    std::ostringstream again;
    writeAlertsJsonl(again, rules, events);
    EXPECT_EQ(text, again.str());
}

#endif // GRAPHENE_OBS_OFF

} // namespace
} // namespace obs
} // namespace graphene
