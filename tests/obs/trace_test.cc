/**
 * @file
 * Tests for the event tracer and its exporters, plus the PR's trace
 * determinism acceptance: per-cell trace files produced by the
 * experiment runner are byte-identical across --jobs counts, and
 * tracing never perturbs the deterministic JSONL artifact. Under
 * GRAPHENE_OBS_OFF the runner half asserts the no-output guarantee
 * instead.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "obs/obs.hh"
#include "sim/experiment.hh"

namespace graphene {
namespace obs {
namespace {

namespace fs = std::filesystem;

#ifndef GRAPHENE_OBS_OFF

Event
make(std::uint64_t cycle, std::uint16_t bank, EventKind kind,
     std::uint32_t row = 0)
{
    Event e;
    e.cycle = Cycle{cycle};
    e.bank = bank;
    e.kind = kind;
    e.row = Row{row};
    return e;
}

TEST(Tracer, MergeIsStableByCycleThenBank)
{
    Tracer tracer(16);
    // Banks emit in their own (monotone) order; cycles interleave.
    tracer.record(make(30, 1, EventKind::Act, 5));
    tracer.record(make(10, 1, EventKind::Act, 6));
    tracer.record(make(10, 0, EventKind::Act, 7));
    tracer.record(make(10, 0, EventKind::PeriodicRef));

    const auto all = tracer.merged();
    ASSERT_EQ(all.size(), 4u);
    // cycle 10 / bank 0 first (its two events in emission order),
    // then cycle 10 / bank 1, then cycle 30 / bank 1.
    EXPECT_EQ(all[0].bank, 0u);
    EXPECT_EQ(all[0].kind, EventKind::Act);
    EXPECT_EQ(all[1].bank, 0u);
    EXPECT_EQ(all[1].kind, EventKind::PeriodicRef);
    EXPECT_EQ(all[2].bank, 1u);
    EXPECT_EQ(all[2].cycle.value(), 10u);
    EXPECT_EQ(all[3].cycle.value(), 30u);
}

TEST(Tracer, JsonlHasHeaderEventsAndFooter)
{
    Tracer tracer(8);
    tracer.record(make(5, 0, EventKind::Act, 42));
    Event no_row = make(9, 0, EventKind::TrackerReset);
    no_row.row = Row::invalid();
    no_row.arg = 3;
    tracer.record(no_row);

    std::ostringstream os;
    tracer.writeEventsJsonl(os, Cycle{1000});
    const std::string text = os.str();

    EXPECT_NE(text.find("graphene-obs-events-v1"), std::string::npos);
    EXPECT_NE(text.find("\"window_cycles\":1000"), std::string::npos);
    EXPECT_NE(text.find("\"kind\":\"act\",\"row\":42"),
              std::string::npos);
    // Row-less events omit the field entirely.
    EXPECT_NE(text.find("\"kind\":\"tracker-reset\",\"arg\":3"),
              std::string::npos);
    EXPECT_NE(text.find("\"footer\":true,\"events\":2,\"dropped\":0"),
              std::string::npos);

    std::ostringstream again;
    tracer.writeEventsJsonl(again, Cycle{1000});
    EXPECT_EQ(text, again.str());
}

TEST(Tracer, OverflowDropsAreCountedInTheFooter)
{
    Tracer tracer(3);
    for (std::uint64_t i = 0; i < 8; ++i)
        tracer.record(make(i, 0, EventKind::Act, i));
    for (std::uint64_t i = 0; i < 2; ++i)
        tracer.record(make(i, 1, EventKind::Act, i));

    EXPECT_EQ(tracer.totalRetained(), 5u);
    EXPECT_EQ(tracer.totalDropped(), 5u);
    EXPECT_EQ(tracer.peakOccupancy(), 3u);

    std::ostringstream os;
    tracer.writeEventsJsonl(os);
    EXPECT_NE(os.str().find("\"dropped\":5"), std::string::npos);
    EXPECT_NE(os.str().find("\"per_bank_dropped\":[5,0]"),
              std::string::npos);
}

TEST(Tracer, ChromeTraceNamesBankTracksAndEvents)
{
    Tracer tracer(8);
    tracer.record(make(5, 1, EventKind::VictimRefresh, 7));

    std::ostringstream os;
    tracer.writeChromeTrace(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"victim-refresh\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ts\":5"), std::string::npos);
    EXPECT_NE(text.find("dram-command-cycles"), std::string::npos);
}

#endif // GRAPHENE_OBS_OFF

// ---- runner integration ---------------------------------------------

sim::ActEngineConfig
smallActConfig()
{
    sim::ActEngineConfig config;
    config.rowsPerBank = 4096;
    config.scheme.rowsPerBank = 4096;
    config.windows = 0.02;
    return config;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Every regular file under @p dir, keyed by filename. */
std::map<std::string, std::string>
slurpDir(const fs::path &dir)
{
    std::map<std::string, std::string> files;
    if (!fs::is_directory(dir))
        return files;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.is_regular_file())
            files[e.path().filename().string()] = slurp(e.path());
    return files;
}

fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

TEST(TraceDeterminism, PerCellTracesAreByteIdenticalAcrossJobs)
{
    const std::vector<schemes::SchemeKind> kinds = {
        schemes::SchemeKind::Graphene, schemes::SchemeKind::Para};

    const fs::path root = freshDir("graphene_obs_jobs_test");
    std::map<std::string, std::string> traces[2];
    std::string artifacts[2];
    const unsigned jobs[2] = {1, 4};
    for (int r = 0; r < 2; ++r) {
        exp::RunOptions options;
        options.jobs = jobs[r];
        options.obsDir =
            (root / ("obs" + std::to_string(r))).string();
        options.jsonlPath =
            (root / ("cells" + std::to_string(r) + ".jsonl"))
                .string();
        options.progress = false;
        exp::Runner runner(options);
        sim::runAdversarialGrid(smallActConfig(), kinds, 99, runner,
                                "obs-jobs-test");
        traces[r] = slurpDir(options.obsDir);
        artifacts[r] = slurp(options.jsonlPath);
    }

    // The primary artifact never depends on the jobs count...
    EXPECT_EQ(artifacts[0], artifacts[1]);

    if (kEnabled) {
        // ...and neither does any per-cell trace file: same names,
        // same bytes (events JSONL, Chrome trace, metrics JSONL).
        ASSERT_FALSE(traces[0].empty());
        ASSERT_EQ(traces[0].size(), traces[1].size());
        for (const auto &kv : traces[0]) {
            ASSERT_TRUE(traces[1].count(kv.first)) << kv.first;
            EXPECT_EQ(kv.second, traces[1].at(kv.first)) << kv.first;
        }
        // Every cell produced its three sidecar files.
        std::size_t events = 0;
        for (const auto &kv : traces[0])
            if (kv.first.find(".events.jsonl") != std::string::npos)
                ++events;
        EXPECT_GT(events, 0u);
    } else {
        // Compiled out: --obs must leave no trace files behind.
        EXPECT_TRUE(traces[0].empty());
    }
    fs::remove_all(root);
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheArtifact)
{
    const std::vector<schemes::SchemeKind> kinds = {
        schemes::SchemeKind::Graphene};
    const fs::path root = freshDir("graphene_obs_perturb_test");

    std::string artifacts[2];
    for (int r = 0; r < 2; ++r) {
        exp::RunOptions options;
        options.jobs = 2;
        if (r == 1)
            options.obsDir = (root / "obs").string();
        options.jsonlPath =
            (root / ("cells" + std::to_string(r) + ".jsonl"))
                .string();
        options.progress = false;
        exp::Runner runner(options);
        sim::runAdversarialGrid(smallActConfig(), kinds, 7, runner,
                                "obs-perturb-test");
        artifacts[r] = slurp(options.jsonlPath);
    }
    EXPECT_FALSE(artifacts[0].empty());
    EXPECT_EQ(artifacts[0], artifacts[1]);
    fs::remove_all(root);
}

} // namespace
} // namespace obs
} // namespace graphene
