/**
 * @file
 * Tests for the bounded event ring: drop-newest overflow policy,
 * deterministic drop accounting, peak occupancy. The ring itself is
 * compiled in both build modes (the Tracer stub just never uses it),
 * so these tests run unguarded.
 */

#include <gtest/gtest.h>

#include "obs/ring.hh"

namespace graphene {
namespace obs {
namespace {

Event
actAt(std::uint64_t cycle, std::uint32_t row)
{
    Event e;
    e.cycle = Cycle{cycle};
    e.row = Row{row};
    e.kind = EventKind::Act;
    return e;
}

TEST(EventRing, FillsToCapacityThenDropsNewest)
{
    EventRing ring(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.push(actAt(i, i));

    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);
    // Drop-newest keeps the earliest events: the retained trace is a
    // complete prefix of the run.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.events()[i].cycle.value(), i);
}

TEST(EventRing, PushReportsAcceptance)
{
    EventRing ring(2);
    EXPECT_TRUE(ring.push(actAt(0, 0)));
    EXPECT_TRUE(ring.push(actAt(1, 1)));
    EXPECT_FALSE(ring.push(actAt(2, 2)));
    EXPECT_EQ(ring.dropped(), 1u);
}

TEST(EventRing, PeakOccupancyEqualsSizeUnderDropNewest)
{
    EventRing ring(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.push(actAt(i, i));
    EXPECT_EQ(ring.peakOccupancy(), 5u);
    EXPECT_EQ(ring.peakOccupancy(), ring.size());
}

TEST(EventRing, DropCountIsAPureFunctionOfTheStream)
{
    // Same stream twice -> identical retained events and drop count;
    // this is the property that keeps trace files byte-identical
    // across --jobs counts.
    EventRing a(3), b(3);
    for (std::uint64_t i = 0; i < 7; ++i) {
        a.push(actAt(i, i * 2));
        b.push(actAt(i, i * 2));
    }
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.dropped(), b.dropped());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].cycle.value(),
                  b.events()[i].cycle.value());
        EXPECT_EQ(a.events()[i].row, b.events()[i].row);
    }
}

TEST(EventRing, ZeroCapacityClampsToOne)
{
    EventRing ring(0);
    EXPECT_EQ(ring.capacity(), 1u);
    EXPECT_TRUE(ring.push(actAt(0, 0)));
    EXPECT_FALSE(ring.push(actAt(1, 1)));
}

} // namespace
} // namespace obs
} // namespace graphene
