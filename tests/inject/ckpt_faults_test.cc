/**
 * @file
 * Checkpoint-corruption fault family: deterministic schedules, and
 * the restore-side safety contract — every single-bit flip of a
 * checkpoint container is rejected with a typed error.
 */

#include "inject/ckpt_faults.hh"

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hh"
#include "ckpt/io.hh"

namespace graphene {
namespace inject {
namespace {

std::vector<std::uint8_t>
sampleContainer()
{
    ckpt::Writer w;
    w.u64(0x1234'5678'9abc'def0ULL);
    w.str("checkpoint corruption campaign payload");
    for (unsigned i = 0; i < 32; ++i)
        w.u32(i * 2654435761u);
    return ckpt::encode(0xfeedface12345678ULL, w.data());
}

TEST(CkptFaults, ScheduleIsAPureFunctionOfThePlan)
{
    CkptFaultPlan plan;
    plan.seed = 77;
    plan.faults = 32;
    const CkptFaultInjector a(plan, 512);
    const CkptFaultInjector b(plan, 512);
    EXPECT_EQ(a.schedule(), b.schedule());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    plan.seed = 78;
    const CkptFaultInjector c(plan, 512);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(CkptFaults, ScheduleStaysInsideTheContainer)
{
    CkptFaultPlan plan;
    plan.faults = 200;
    const CkptFaultInjector injector(plan, 64);
    for (const CkptFaultEvent &e : injector.schedule()) {
        EXPECT_LT(e.offset, 64u);
        EXPECT_LT(e.bit, 8u);
    }
}

TEST(CkptFaults, ApplyFlipsExactlyOneBit)
{
    const std::vector<std::uint8_t> blob = sampleContainer();
    const CkptFaultEvent event{9, 3};
    const std::vector<std::uint8_t> corrupted =
        applyCkptFault(blob, event);
    ASSERT_EQ(corrupted.size(), blob.size());
    unsigned diff_bits = 0;
    for (std::size_t i = 0; i < blob.size(); ++i)
        diff_bits += static_cast<unsigned>(
            __builtin_popcount(blob[i] ^ corrupted[i]));
    EXPECT_EQ(diff_bits, 1u);
    EXPECT_NE(corrupted[9], blob[9]);
}

/** The load-bearing contract: no scheduled corruption ever decodes.
 *  Every bit of the container is covered by magic, version, header
 *  checksum, or payload checksum, so a campaign drawn uniformly
 *  over the whole container must be rejected wholesale — each with
 *  a typed checkpoint error, never UB or a silent wrong restore. */
TEST(CkptFaults, EveryScheduledCorruptionIsRejectedTyped)
{
    const std::vector<std::uint8_t> blob = sampleContainer();
    {
        // Sanity: the uncorrupted container decodes.
        const Result<ckpt::Blob> ok =
            ckpt::decode(blob, 0xfeedface12345678ULL);
        ASSERT_TRUE(ok.ok());
    }

    CkptFaultPlan plan;
    plan.seed = 2024;
    plan.faults = 256;
    const CkptFaultInjector injector(plan, blob.size());
    for (const CkptFaultEvent &event : injector.schedule()) {
        const Result<ckpt::Blob> decoded = ckpt::decode(
            applyCkptFault(blob, event), 0xfeedface12345678ULL);
        ASSERT_FALSE(decoded.ok())
            << "bit " << event.bit << " of byte " << event.offset
            << " decoded after corruption";
        const ErrorCode code = decoded.error().code();
        EXPECT_TRUE(code == ErrorCode::CkptTruncated ||
                    code == ErrorCode::CkptBadHeader ||
                    code == ErrorCode::CkptVersionSkew ||
                    code == ErrorCode::CkptBadPayload ||
                    code == ErrorCode::CkptConfigMismatch)
            << "unexpected code " << errorCodeName(code)
            << " for bit " << event.bit << " of byte "
            << event.offset;
    }
}

} // namespace
} // namespace inject
} // namespace graphene
