/**
 * @file
 * Acceptance tests for the graceful-degradation story (the robustness
 * PR's tentpole): these cases assert exactly the three outcomes
 * ISSUE.md names — an unhardened table loses protection under a
 * targeted SRAM upset (missed victim refreshes > 0), the
 * parity-protected table recovers within one scrub period (well
 * inside one tREFW) with zero missed refreshes, and ACT-stream
 * corruption campaigns never crash. Plus determinism of the harness
 * and the config-field perturbation sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/counter_table.hh"
#include "core/hardened_counter_table.hh"
#include "inject/degradation.hh"

namespace graphene {
namespace inject {
namespace {

/** Tracking threshold used by the targeted scenarios. */
constexpr std::uint64_t kThreshold = 64;

/**
 * Outcome (a): a plain CounterTable whose hot entry's count is
 * corrupted downwards mid-window misses a victim refresh — the true
 * count reaches T while the estimate, reset to a smaller value, never
 * crosses a multiple of T in time.
 */
TEST(Degradation, UnhardenedTableLosesProtection)
{
    core::CounterTable table(8);
    const Row hot{7};

    std::uint64_t since = 0;
    std::uint64_t missed = 0;
    unsigned hot_slot = core::CounterTable::kNoSlot;

    // 32 clean activations: estimate == true count == 32.
    for (int i = 0; i < 32; ++i) {
        ++since;
        const auto r = table.processActivation(hot);
        if (r.slot != core::CounterTable::kNoSlot)
            hot_slot = r.slot;
    }
    ASSERT_NE(hot_slot, core::CounterTable::kNoSlot);
    ASSERT_EQ(table.estimatedCount(hot).value(), 32u);

    // The upset: clear bit 5 of the stored count (32 -> 0). Lemma 1
    // (estimate >= true count) is now broken.
    table.corruptEntryCount(hot_slot, 5);
    EXPECT_EQ(table.estimatedCount(hot).value(), 0u);

    // Keep hammering; replay Graphene's crossing rule on the
    // estimates and count P3 failures against the true counts.
    for (int i = 0; i < 200; ++i) {
        ++since;
        const auto r = table.processActivation(hot);
        if (!r.spilled &&
            r.estimatedCount.value() % kThreshold == 0)
            since = 0;
        if (since >= kThreshold) {
            ++missed;
            since = 0;
        }
    }
    EXPECT_GT(missed, 0u);
}

/**
 * Outcome (b): the same upset against the parity-protected table is
 * caught by the next scrub sweep, which issues a conservative victim
 * refresh for the corrupted entry's row — no missed refresh, i.e.
 * protection is regained within one scrub period (32 activations
 * here, far inside a reset window).
 */
TEST(Degradation, HardenedTableRecoversWithinOneScrubPeriod)
{
    core::HardenedCounterTable table(8, 32);
    const Row hot{7};

    std::uint64_t since = 0;
    std::uint64_t missed = 0;
    std::uint64_t nrr_for_hot = 0;
    unsigned hot_slot = core::CounterTable::kNoSlot;

    for (int i = 0; i < 32; ++i) {
        ++since;
        const auto r = table.processActivation(hot);
        if (r.slot != core::CounterTable::kNoSlot)
            hot_slot = r.slot;
    }
    ASSERT_NE(hot_slot, core::CounterTable::kNoSlot);

    // Same upset as above, but the stored parity bit now disagrees
    // with the entry until the next write touches the slot.
    table.injectEntryCountFault(hot_slot, 5);
    EXPECT_EQ(table.table().estimatedCount(hot).value(), 0u);

    // The periodic sweep fires before the slot is touched again.
    ASSERT_TRUE(table.scrubDue());
    const auto report = table.scrub();
    EXPECT_FALSE(report.clean());
    EXPECT_GE(report.entriesScrubbed, 1u);
    EXPECT_GE(table.parityFailures(), 1u);
    for (Row victim : report.conservativeNrr)
        if (victim == hot) {
            ++nrr_for_hot;
            since = 0;
        }
    EXPECT_EQ(nrr_for_hot, 1u);

    // From here the estimate and the true count track 1:1 again, so
    // the crossing rule refreshes on time for the rest of the window.
    for (int i = 0; i < 400; ++i) {
        ++since;
        const auto r = table.processActivation(hot);
        if (!r.spilled &&
            r.estimatedCount.value() % kThreshold == 0)
            since = 0;
        if (table.scrubDue()) {
            const auto sweep = table.scrub();
            EXPECT_TRUE(sweep.clean());
            for (Row victim : sweep.conservativeNrr)
                if (victim == hot)
                    since = 0;
        }
        if (since >= kThreshold) {
            ++missed;
            since = 0;
        }
    }
    EXPECT_EQ(missed, 0u);
}

/**
 * Outcome (c): a full stream-corruption campaign (drops, duplicates,
 * swaps across every model-checker family) completes without
 * crashing, processes every activation, and is deterministic.
 */
TEST(Degradation, StreamCorruptionNeverCrashes)
{
    DegradationConfig config;
    config.model.streamLength = 6000;
    config.model.resetEvery = 3000;
    config.plan.seed = 0xace5ULL;
    config.plan.faults = 48;
    config.plan.sites = streamFaultSites();

    const DegradationReport report = runDegradation(config);
    ASSERT_FALSE(report.rows.empty());
    std::uint64_t stream_faults = 0;
    for (const auto &row : report.rows) {
        EXPECT_EQ(row.activations, config.model.streamLength);
        stream_faults += row.streamFaults;
    }
    EXPECT_GT(stream_faults, 0u);
    // Stream faults are transient: no state flip is ever applied.
    EXPECT_EQ(report.totalFaultsApplied(), 0u);

    const DegradationReport again = runDegradation(config);
    EXPECT_EQ(report.summary(), again.summary());
}

TEST(Degradation, StateFaultCampaignsRunHardenedAndPlain)
{
    DegradationConfig config;
    config.model.streamLength = 6000;
    config.model.resetEvery = 3000;
    config.plan.seed = 0xbeadULL;
    config.plan.faults = 24;
    config.plan.sites = stateFaultSites();

    const DegradationReport plain = runDegradation(config);
    config.harden = true;
    const DegradationReport hardened = runDegradation(config);

    EXPECT_GT(plain.totalFaultsApplied(), 0u);
    EXPECT_GT(hardened.totalFaultsApplied(), 0u);
    // Scrub sweeps only exist on the hardened side.
    std::uint64_t repairs = 0;
    for (const auto &row : hardened.rows)
        repairs += row.scrubRepairs;
    for (const auto &row : plain.rows)
        EXPECT_EQ(row.scrubRepairs, 0u);
    // The report is printable either way.
    EXPECT_NE(plain.summary().find("total:"), std::string::npos);
    EXPECT_NE(hardened.summary().find("total:"), std::string::npos);
}

TEST(Degradation, PerturbationSweepPartitionsTrials)
{
    schemes::SchemeSpec base;
    base.kind = schemes::SchemeKind::Graphene;
    const unsigned trials = 200;
    const PerturbationReport report =
        perturbSchemeSpecs(base, trials, 0x12345ULL);
    EXPECT_EQ(report.trials, trials);
    EXPECT_EQ(report.trials, report.rejectedTyped + report.accepted);
    // The sweep flips real bits; both outcomes must occur.
    EXPECT_GT(report.rejectedTyped, 0u);
    EXPECT_GT(report.accepted, 0u);

    const PerturbationReport again =
        perturbSchemeSpecs(base, trials, 0x12345ULL);
    EXPECT_EQ(report.summary(), again.summary());
}

} // namespace
} // namespace inject
} // namespace graphene
