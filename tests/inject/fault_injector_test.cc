/**
 * @file
 * Determinism and shape tests for the fault-event scheduler: the
 * schedule must be a pure function of the plan (satellite (d) of the
 * robustness PR), sorted by step, and confined to the declared sites,
 * slots, and bit ranges.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "inject/fault_injector.hh"

namespace graphene {
namespace inject {
namespace {

TEST(FaultInjector, SamePlanSameSchedule)
{
    FaultPlan plan;
    plan.seed = 0xfeedULL;
    plan.faults = 64;

    const FaultInjector a(plan);
    const FaultInjector b(plan);

    ASSERT_EQ(a.schedule().size(), plan.faults);
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    for (std::size_t i = 0; i < a.schedule().size(); ++i)
        EXPECT_TRUE(a.schedule()[i] == b.schedule()[i])
            << "event " << i << " diverged";
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FaultInjector, DifferentSeedDifferentFingerprint)
{
    FaultPlan plan;
    plan.faults = 64;
    plan.seed = 1;
    const FaultInjector a(plan);
    plan.seed = 2;
    const FaultInjector b(plan);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultInjector, ScheduleSortedAndInRange)
{
    FaultPlan plan;
    plan.seed = 0x5eedULL;
    plan.faults = 256;
    plan.streamLength = 1000;
    plan.tableEntries = 4;
    plan.maxCountBit = 7;
    plan.maxAddressBit = 11;

    const FaultInjector injector(plan);
    const auto &schedule = injector.schedule();
    ASSERT_EQ(schedule.size(), plan.faults);
    EXPECT_TRUE(std::is_sorted(
        schedule.begin(), schedule.end(),
        [](const FaultEvent &a, const FaultEvent &b) {
            return a.step < b.step;
        }));
    for (const FaultEvent &e : schedule) {
        EXPECT_LT(e.step, plan.streamLength);
        if (!isStateSite(e.site))
            continue;
        if (e.site != FaultSite::Spillover) {
            EXPECT_LT(e.slot, plan.tableEntries);
        }
        if (e.site == FaultSite::EntryAddress) {
            EXPECT_LE(e.bit, plan.maxAddressBit);
        } else {
            EXPECT_LE(e.bit, plan.maxCountBit);
        }
    }
}

TEST(FaultInjector, RestrictedSitesAreHonoured)
{
    FaultPlan plan;
    plan.faults = 128;
    plan.sites = streamFaultSites();
    const FaultInjector injector(plan);
    for (const FaultEvent &e : injector.schedule())
        EXPECT_FALSE(isStateSite(e.site))
            << faultSiteName(e.site) << " in a stream-only campaign";
}

TEST(FaultInjector, SiteHelpersPartitionTheTaxonomy)
{
    const auto &all = allFaultSites();
    const auto &state = stateFaultSites();
    const auto &stream = streamFaultSites();
    EXPECT_EQ(all.size(), state.size() + stream.size());
    for (FaultSite s : state)
        EXPECT_TRUE(isStateSite(s)) << faultSiteName(s);
    for (FaultSite s : stream)
        EXPECT_FALSE(isStateSite(s)) << faultSiteName(s);
    for (FaultSite s : all)
        EXPECT_NE(faultSiteName(s), nullptr);
}

} // namespace
} // namespace inject
} // namespace graphene
