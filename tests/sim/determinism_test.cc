/**
 * @file
 * Determinism regression: the same seeded experiment run twice must
 * produce byte-identical statistics. Guards the property the
 * nondeterministic-rng lint rule exists to protect — every result in
 * the reproduction is a pure function of its configuration and seed.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/system.hh"
#include "workloads/profiles.hh"

namespace graphene {
namespace sim {
namespace {

/** Serialize every field of a SystemResult with full precision. */
std::string
fingerprint(const SystemResult &r)
{
    std::ostringstream ss;
    ss.precision(17);
    ss << "requests=" << r.requests << "\nacts=" << r.acts
       << "\nvictimRowsRefreshed=" << r.victimRowsRefreshed
       << "\nbitFlips=" << r.bitFlips << "\nrowHitRate=" << r.rowHitRate
       << "\nrefreshEnergyOverhead=" << r.refreshEnergyOverhead
       << "\nwindows=" << r.windows << "\ncoreRequests=";
    for (const auto n : r.coreRequests)
        ss << n << ",";
    return ss.str();
}

SystemConfig
smallConfig(std::uint64_t seed)
{
    SystemConfig config;
    config.numCores = 4;
    config.scheme.kind = schemes::SchemeKind::Graphene;
    config.windows = 0.02;
    config.seed = seed;
    return config;
}

TEST(Determinism, SameSeedSameStats)
{
    const auto workload = workloads::mixBlend(4, 3);
    const std::string first =
        fingerprint(runSystem(smallConfig(42), workload));
    const std::string second =
        fingerprint(runSystem(smallConfig(42), workload));
    EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedPerturbsTheRun)
{
    // The complement: the seed actually feeds the run. If both seeds
    // produced identical traffic the test above would be vacuous.
    const auto workload = workloads::mixBlend(4, 3);
    const std::string a =
        fingerprint(runSystem(smallConfig(42), workload));
    const std::string b =
        fingerprint(runSystem(smallConfig(43), workload));
    EXPECT_NE(a, b);
}

TEST(Determinism, FreshWorkloadObjectsDoNotPerturb)
{
    // Rebuilding the WorkloadSpec must not change the outcome: the
    // profile generation is itself seed-driven.
    const std::string a = fingerprint(
        runSystem(smallConfig(7), workloads::mixHigh(4, 11)));
    const std::string b = fingerprint(
        runSystem(smallConfig(7), workloads::mixHigh(4, 11)));
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace sim
} // namespace graphene
