/**
 * @file
 * The kill-and-resume equivalence property (tier-1, DESIGN.md §14):
 * for every protection scheme, running an ACT-stream experiment to
 * completion must be indistinguishable from checkpointing it at an
 * arbitrary cycle, discarding the live engine, restoring a fresh one
 * from the serialized bytes, and continuing — identical result
 * fields, identical metrics series. The checkpoint cycles are fuzzed
 * per scheme from a seeded RNG so every run lands mid-tREFW with a
 * partial refresh rotation and live tracker state in flight.
 *
 * The CI acceptance leg (ckpt-resume job) states the same property
 * end-to-end: SIGKILL a fig8 bench mid-run, resume from the latest
 * auto-checkpoint, and byte-diff the JSONL artifacts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/random.hh"
#include "obs/obs.hh"
#include "sim/act_engine.hh"

namespace graphene {
namespace sim {
namespace {

ActEngineConfig
engineConfig(schemes::SchemeKind kind)
{
    ActEngineConfig c;
    c.scheme.kind = kind;
    c.rowsPerBank = 8192;
    c.scheme.rowsPerBank = 8192;
    // 0.6 windows crosses Graphene's k = 2 reset boundary at
    // tREFW / 2, so resumed runs must reproduce a mid-stream
    // tracker reset too.
    c.windows = 0.6;
    return c;
}

/** A stateful pattern (round-robin base + RNG noise) per scheme. */
std::unique_ptr<workloads::ActPattern>
patternFor(const ActEngineConfig &c)
{
    return workloads::patterns::s2(10, c.rowsPerBank, 17);
}

void
expectIdentical(const ActEngineResult &a, const ActEngineResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.acts, b.acts) << what;
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed) << what;
    EXPECT_EQ(a.nrrEvents, b.nrrEvents) << what;
    EXPECT_EQ(a.refreshCommands, b.refreshCommands) << what;
    EXPECT_EQ(a.bitFlips, b.bitFlips) << what;
    // Bit-exact, not approximate: the checkpoint stores doubles as
    // their IEEE-754 bit patterns and the resumed computation must
    // replay the identical operation sequence.
    EXPECT_EQ(a.peakDisturbance, b.peakDisturbance) << what;
    EXPECT_EQ(a.refreshEnergyOverhead, b.refreshEnergyOverhead)
        << what;
    EXPECT_EQ(a.windows, b.windows) << what;
}

class KillResume
    : public ::testing::TestWithParam<schemes::SchemeKind>
{
};

TEST_P(KillResume, ResumedRunMatchesUninterrupted)
{
    const schemes::SchemeKind kind = GetParam();
    const ActEngineConfig config = engineConfig(kind);

    // Uninterrupted reference run.
    auto ref_pattern = patternFor(config);
    ActStreamEngine reference(config, *ref_pattern);
    const ActEngineResult want = reference.run();

    // Fuzz checkpoint cycles across the horizon (seeded per scheme).
    Rng fuzz(0x9e3779b9u + static_cast<std::uint64_t>(kind));
    const std::uint64_t horizon = static_cast<std::uint64_t>(
        static_cast<double>(config.timing.cREFW().value()) *
        config.windows);

    for (int trial = 0; trial < 2; ++trial) {
        const Cycle stop{1 + fuzz.nextRange(horizon - 1)};

        // Run a victim engine up to the kill point and checkpoint.
        auto killed_pattern = patternFor(config);
        ActStreamEngine killed(config, *killed_pattern);
        killed.runUntil(stop);
        const std::vector<std::uint8_t> blob = killed.saveCheckpoint();
        // The live engine and its pattern are now discarded — resume
        // must work from the bytes alone.

        auto resumed_pattern = patternFor(config);
        ActStreamEngine resumed(config, *resumed_pattern);
        const Result<void> restored = resumed.restoreCheckpoint(blob);
        ASSERT_TRUE(restored.ok())
            << schemes::schemeKindName(kind) << " @" << stop.value()
            << ": " << restored.error().describe();

        while (resumed.step()) {
        }
        expectIdentical(want, resumed.finish(),
                        schemes::schemeKindName(kind) + " @cycle " +
                            std::to_string(stop.value()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, KillResume,
    ::testing::Values(schemes::SchemeKind::None,
                      schemes::SchemeKind::Graphene,
                      schemes::SchemeKind::Para,
                      schemes::SchemeKind::ProHit,
                      schemes::SchemeKind::MrLoc,
                      schemes::SchemeKind::Cbt,
                      schemes::SchemeKind::TwiCe),
    [](const ::testing::TestParamInfo<schemes::SchemeKind> &info) {
        return schemes::schemeKindName(info.param);
    });

#ifndef GRAPHENE_OBS_OFF
TEST(KillResumeObs, MetricsSeriesSurvivesResume)
{
    ActEngineConfig config = engineConfig(schemes::SchemeKind::Graphene);
    config.windows = 1.5; // several closed metric windows

    obs::Sink ref_sink;
    ActEngineConfig ref_config = config;
    ref_config.obs = &ref_sink;
    auto ref_pattern = patternFor(ref_config);
    ActStreamEngine reference(ref_config, *ref_pattern);
    const ActEngineResult want = reference.run();
    std::ostringstream want_jsonl;
    ref_sink.metrics.writeJsonl(want_jsonl);

    obs::Sink killed_sink;
    ActEngineConfig killed_config = config;
    killed_config.obs = &killed_sink;
    auto killed_pattern = patternFor(killed_config);
    ActStreamEngine killed(killed_config, *killed_pattern);
    killed.runUntil(Cycle{static_cast<std::uint64_t>(
        static_cast<double>(config.timing.cREFW().value()) * 0.7)});
    const auto blob = killed.saveCheckpoint();

    obs::Sink resumed_sink;
    ActEngineConfig resumed_config = config;
    resumed_config.obs = &resumed_sink;
    auto resumed_pattern = patternFor(resumed_config);
    ActStreamEngine resumed(resumed_config, *resumed_pattern);
    ASSERT_TRUE(resumed.restoreCheckpoint(blob).ok());
    while (resumed.step()) {
    }
    const ActEngineResult got = resumed.finish();

    EXPECT_EQ(want.acts, got.acts);
    std::ostringstream got_jsonl;
    resumed_sink.metrics.writeJsonl(got_jsonl);
    EXPECT_EQ(want_jsonl.str(), got_jsonl.str())
        << "windowed metrics series diverged across the resume";
}
#endif

TEST(KillResumeReject, DifferentConfigIsConfigMismatch)
{
    const ActEngineConfig config =
        engineConfig(schemes::SchemeKind::Graphene);
    auto pattern = patternFor(config);
    ActStreamEngine engine(config, *pattern);
    engine.runUntil(Cycle{100000});
    const auto blob = engine.saveCheckpoint();

    ActEngineConfig other = config;
    other.actRate = 0.5;
    auto other_pattern = patternFor(other);
    ActStreamEngine stranger(other, *other_pattern);
    const Result<void> r = stranger.restoreCheckpoint(blob);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::CkptConfigMismatch);
}

TEST(KillResumeReject, CorruptedBytesNeverRestore)
{
    const ActEngineConfig config =
        engineConfig(schemes::SchemeKind::TwiCe);
    auto pattern = patternFor(config);
    ActStreamEngine engine(config, *pattern);
    engine.runUntil(Cycle{500000});
    const auto blob = engine.saveCheckpoint();

    // Flip one byte at a stride across the whole artifact: every
    // corruption must be rejected with a typed ckpt error (never a
    // crash, never a silent success — ASan/TSan keep this honest).
    for (std::size_t pos = 0; pos < blob.size();
         pos += 1 + blob.size() / 97) {
        auto bad = blob;
        bad[pos] ^= 0x20;
        auto victim_pattern = patternFor(config);
        ActStreamEngine victim(config, *victim_pattern);
        const Result<void> r = victim.restoreCheckpoint(bad);
        ASSERT_FALSE(r.ok()) << "byte " << pos;
        switch (r.error().code()) {
          case ErrorCode::CkptTruncated:
          case ErrorCode::CkptBadHeader:
          case ErrorCode::CkptVersionSkew:
          case ErrorCode::CkptBadPayload:
          case ErrorCode::CkptConfigMismatch:
            break;
          default:
            ADD_FAILURE() << "byte " << pos << ": unexpected code "
                          << errorCodeName(r.error().code());
        }
    }
}

TEST(KillResumeBoundary, CheckpointAtEveryEarlySlotRoundTrips)
{
    // Dense sweep over the first ACT slots (covers the first REF
    // catch-up): checkpoint after every step and restore immediately;
    // the restored engine's own checkpoint must be byte-identical
    // (serialize-restore-serialize is the identity).
    const ActEngineConfig config =
        engineConfig(schemes::SchemeKind::MrLoc);
    auto pattern = patternFor(config);
    ActStreamEngine engine(config, *pattern);
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(engine.step());
        const auto blob = engine.saveCheckpoint();
        auto copy_pattern = patternFor(config);
        ActStreamEngine copy(config, *copy_pattern);
        ASSERT_TRUE(copy.restoreCheckpoint(blob).ok()) << i;
        EXPECT_EQ(copy.saveCheckpoint(), blob) << "step " << i;
    }
}

} // namespace
} // namespace sim
} // namespace graphene
