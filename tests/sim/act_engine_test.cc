/**
 * @file
 * Tests for the ACT-stream engine: rate control, refresh cadence,
 * and overhead accounting.
 */

#include <gtest/gtest.h>

#include "sim/act_engine.hh"

namespace graphene {
namespace sim {
namespace {

ActEngineConfig
base(schemes::SchemeKind kind)
{
    ActEngineConfig c;
    c.scheme.kind = kind;
    c.rowsPerBank = 8192;
    c.scheme.rowsPerBank = 8192;
    return c;
}

TEST(ActEngine, FullRateDeliversWActs)
{
    ActEngineConfig config = base(schemes::SchemeKind::None);
    config.physicalThreshold = 1ULL << 40;
    auto pattern = workloads::patterns::s3(config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    // W = 1,358,404 at full rate over one tREFW (within refresh
    // rounding).
    EXPECT_NEAR(static_cast<double>(r.acts), 1358404.0, 15000.0);
}

TEST(ActEngine, HalfRateHalvesActs)
{
    ActEngineConfig config = base(schemes::SchemeKind::None);
    config.physicalThreshold = 1ULL << 40;
    config.actRate = 0.5;
    auto pattern = workloads::patterns::s3(config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_NEAR(static_cast<double>(r.acts), 1358404.0 / 2, 15000.0);
}

TEST(ActEngine, RefreshCommandsPerWindow)
{
    ActEngineConfig config = base(schemes::SchemeKind::None);
    config.physicalThreshold = 1ULL << 40;
    auto pattern = workloads::patterns::s3(config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    // tREFW / tREFI = 8205 REFs per window.
    EXPECT_NEAR(static_cast<double>(r.refreshCommands), 8205.0, 2.0);
}

TEST(ActEngine, GrapheneBoundsWorstCaseEnergy)
{
    // The paper's headline: even the most adversarial pattern costs
    // Graphene at most ~0.34% extra refresh energy (k = 2, 50K).
    ActEngineConfig config = base(schemes::SchemeKind::Graphene);
    config.rowsPerBank = 65536;
    config.scheme.rowsPerBank = 65536;
    auto pattern = workloads::patterns::counterWorstCase(
        80, config.rowsPerBank, 11);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_EQ(r.bitFlips, 0u);
    EXPECT_LE(r.refreshEnergyOverhead, 0.0035);
    EXPECT_GT(r.refreshEnergyOverhead, 0.0015);
}

TEST(ActEngine, GrapheneIdleUnderSpreadTraffic)
{
    ActEngineConfig config = base(schemes::SchemeKind::Graphene);
    auto pattern =
        workloads::patterns::counterWorstCase(4096, 8192, 3);
    config.actRate = 0.3;
    const ActEngineResult r = runActStream(config, *pattern);
    // 4096 rows at 30% rate: no row comes near T.
    EXPECT_EQ(r.victimRowsRefreshed, 0u);
    EXPECT_EQ(r.refreshEnergyOverhead, 0.0);
}

TEST(ActEngine, ParaOverheadTracksProbability)
{
    ActEngineConfig config = base(schemes::SchemeKind::Para);
    auto pattern = workloads::patterns::s3(config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    const double expected =
        0.00145 * static_cast<double>(r.acts);
    EXPECT_NEAR(static_cast<double>(r.victimRowsRefreshed), expected,
                expected * 0.1);
    // ~2.1% constant refresh-energy overhead (Section V-B2).
    EXPECT_NEAR(r.refreshEnergyOverhead, 0.021, 0.004);
}

TEST(ActEngine, FractionalWindows)
{
    ActEngineConfig config = base(schemes::SchemeKind::None);
    config.physicalThreshold = 1ULL << 40;
    config.windows = 0.25;
    auto pattern = workloads::patterns::s3(config.rowsPerBank);
    const ActEngineResult r = runActStream(config, *pattern);
    EXPECT_NEAR(static_cast<double>(r.acts), 1358404.0 / 4, 8000.0);
}

TEST(ActEngine, VictimRefreshesThrottleTheAttacker)
{
    // With a very low threshold Graphene spends bank time on NRRs;
    // the attacker's achieved ACT count drops below the unprotected
    // run's.
    ActEngineConfig unprotected = base(schemes::SchemeKind::None);
    unprotected.physicalThreshold = 1ULL << 40;
    auto p1 = workloads::patterns::s3(unprotected.rowsPerBank);
    const auto r_none = runActStream(unprotected, *p1);

    ActEngineConfig protected_cfg = base(schemes::SchemeKind::Graphene);
    protected_cfg.scheme.rowHammerThreshold = 1000;
    protected_cfg.physicalThreshold = 1000;
    auto p2 = workloads::patterns::s3(protected_cfg.rowsPerBank);
    const auto r_graphene = runActStream(protected_cfg, *p2);

    EXPECT_EQ(r_graphene.bitFlips, 0u);
    EXPECT_LT(r_graphene.acts, r_none.acts);
}

} // namespace
} // namespace sim
} // namespace graphene
