/**
 * @file
 * Tests for the trace-driven full system and the experiment grid.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"

namespace graphene {
namespace sim {
namespace {

SystemConfig
smallSystem(schemes::SchemeKind kind)
{
    SystemConfig c;
    c.scheme.kind = kind;
    c.windows = 0.02; // ~1.3 ms simulated
    c.numCores = 4;
    return c;
}

workloads::WorkloadSpec
smallWorkload(const std::string &app = "lbm")
{
    return workloads::homogeneous(app, 4);
}

TEST(System, AllCoresMakeProgress)
{
    const SystemResult r =
        runSystem(smallSystem(schemes::SchemeKind::None),
                  smallWorkload());
    ASSERT_EQ(r.coreRequests.size(), 4u);
    for (auto reqs : r.coreRequests)
        EXPECT_GT(reqs, 1000u);
    EXPECT_GT(r.acts, 0u);
    EXPECT_GT(r.requests, r.acts); // some row hits
}

TEST(System, DeterministicAcrossRuns)
{
    const SystemConfig c = smallSystem(schemes::SchemeKind::Graphene);
    const SystemResult a = runSystem(c, smallWorkload());
    const SystemResult b = runSystem(c, smallWorkload());
    EXPECT_EQ(a.coreRequests, b.coreRequests);
    EXPECT_EQ(a.acts, b.acts);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
}

TEST(System, GrapheneSilentOnNormalWorkloads)
{
    // The paper's central claim: zero victim refreshes, hence zero
    // energy and performance overhead, on realistic traffic.
    const SystemResult r =
        runSystem(smallSystem(schemes::SchemeKind::Graphene),
                  smallWorkload());
    EXPECT_EQ(r.victimRowsRefreshed, 0u);
    EXPECT_EQ(r.refreshEnergyOverhead, 0.0);
    EXPECT_EQ(r.bitFlips, 0u);
}

TEST(System, TwiCeSilentOnNormalWorkloads)
{
    const SystemResult r =
        runSystem(smallSystem(schemes::SchemeKind::TwiCe),
                  smallWorkload());
    EXPECT_EQ(r.victimRowsRefreshed, 0u);
}

TEST(System, ParaPaysOnEveryWorkload)
{
    const SystemResult r =
        runSystem(smallSystem(schemes::SchemeKind::Para),
                  smallWorkload());
    EXPECT_GT(r.victimRowsRefreshed, 0u);
    EXPECT_GT(r.refreshEnergyOverhead, 0.0);
}

TEST(System, GrapheneMatchesBaselinePerformance)
{
    const SystemResult baseline =
        runSystem(smallSystem(schemes::SchemeKind::None),
                  smallWorkload());
    const SystemResult graphene =
        runSystem(smallSystem(schemes::SchemeKind::Graphene),
                  smallWorkload());
    // No victim refreshes -> identical scheduling -> ~zero loss.
    EXPECT_NEAR(graphene.speedupLossVs(baseline), 0.0, 0.001);
}

TEST(System, RowHitRateReflectsWorkloadLocality)
{
    const SystemResult streaming =
        runSystem(smallSystem(schemes::SchemeKind::None),
                  smallWorkload("lbm"));
    const SystemResult random =
        runSystem(smallSystem(schemes::SchemeKind::None),
                  smallWorkload("mcf"));
    EXPECT_GT(streaming.rowHitRate, random.rowHitRate);
}

TEST(System, UndersizedWorkloadIsFatal)
{
    EXPECT_DEATH(runSystem(smallSystem(schemes::SchemeKind::None),
                           workloads::homogeneous("lbm", 2)),
                 "supplies");
}

TEST(Experiment, OverheadGridShape)
{
    const std::vector<workloads::WorkloadSpec> suite = {
        smallWorkload("lbm"), smallWorkload("mcf")};
    const std::vector<schemes::SchemeKind> kinds = {
        schemes::SchemeKind::Graphene, schemes::SchemeKind::Para};
    const auto rows = runOverheadGrid(
        smallSystem(schemes::SchemeKind::None), suite, kinds);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].workload, "lbm");
    EXPECT_EQ(rows[0].scheme, "Graphene");
    EXPECT_EQ(rows[3].scheme, "PARA");
    for (const auto &row : rows)
        EXPECT_EQ(row.bitFlips, 0u);
}

TEST(Experiment, AdversarialGridShape)
{
    ActEngineConfig base;
    base.rowsPerBank = 8192;
    base.scheme.rowsPerBank = 8192;
    base.windows = 0.05;
    const auto rows = runAdversarialGrid(
        base, {schemes::SchemeKind::Graphene}, 3);
    ASSERT_EQ(rows.size(), 6u); // S1 x2, S2 x2, S3, S4
    for (const auto &row : rows) {
        EXPECT_EQ(row.scheme, "Graphene");
        EXPECT_EQ(row.bitFlips, 0u);
    }
}

TEST(System, ValidateCollectsEveryViolation)
{
    SystemConfig config;
    config.numCores = 0;
    config.windows = 0.0;
    config.scheme.blastRadius = 0;

    const Result<void> result = config.validate();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::Config);
    // One pass reports all three broken rules, not just the first.
    ASSERT_GE(result.error().notes().size(), 3u);
    const std::string report = result.error().describe();
    EXPECT_NE(report.find("core"), std::string::npos);
    EXPECT_NE(report.find("refresh windows"), std::string::npos);
    EXPECT_NE(report.find("scheme spec"), std::string::npos);
}

TEST(System, DefaultConfigValidates)
{
    EXPECT_TRUE(SystemConfig().validate().ok());
    EXPECT_TRUE(ActEngineConfig().validate().ok());
}

TEST(ActEngine, ValidateCollectsEveryViolation)
{
    ActEngineConfig config;
    config.actRate = 0.0;
    config.windows = -1.0;
    config.rowsPerBank = 0;
    const Result<void> result = config.validate();
    ASSERT_FALSE(result.ok());
    EXPECT_GE(result.error().notes().size(), 3u);
}

TEST(Experiment, InvalidBaselineSkipsCellsInsteadOfAborting)
{
    SystemConfig base = smallSystem(schemes::SchemeKind::None);
    base.scheme.blastRadius = 0; // poisons every derived cell spec
    const std::vector<workloads::WorkloadSpec> suite = {
        smallWorkload("lbm"), smallWorkload("mcf")};
    const std::vector<schemes::SchemeKind> kinds = {
        schemes::SchemeKind::Graphene, schemes::SchemeKind::Para};

    const auto rows = runOverheadGrid(base, suite, kinds);
    ASSERT_EQ(rows.size(), 4u); // the grid keeps its shape
    for (const auto &row : rows) {
        EXPECT_TRUE(row.skipped());
        EXPECT_NE(row.error.find("blast radius"), std::string::npos);
        EXPECT_EQ(row.victimRows, 0u);
    }
}

TEST(Experiment, ValidGridRowsCarryNoError)
{
    const auto rows = runOverheadGrid(
        smallSystem(schemes::SchemeKind::None),
        {smallWorkload("lbm")}, {schemes::SchemeKind::Graphene});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].skipped());
    EXPECT_TRUE(rows[0].error.empty());
}

TEST(Experiment, AdversarialGridSkipsInvalidKind)
{
    ActEngineConfig base;
    base.rowsPerBank = 8192;
    base.scheme.rowsPerBank = 8192;
    base.scheme.rowHammerThreshold = 0; // invalid for any scheme
    base.windows = 0.05;
    const auto rows = runAdversarialGrid(
        base, {schemes::SchemeKind::Graphene}, 3);
    ASSERT_EQ(rows.size(), 6u); // same shape as the valid grid
    for (const auto &row : rows) {
        EXPECT_TRUE(row.skipped());
        EXPECT_NE(row.error.find("threshold"), std::string::npos);
    }
}

} // namespace
} // namespace sim
} // namespace graphene
