/**
 * @file
 * Tests for multi-channel trace replay.
 */

#include <gtest/gtest.h>

#include "sim/replay.hh"

namespace graphene {
namespace sim {
namespace {

std::vector<workloads::TraceRecord>
captured(const std::string &app, Cycle horizon)
{
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    return workloads::captureTrace(workloads::homogeneous(app, 8),
                                   mapper, horizon, 7);
}

TEST(Replay, ServesWholeTrace)
{
    const auto trace = captured("mcf", Cycle{200000});
    ReplayConfig config;
    const ReplayResult r = replayTrace(config, trace);
    EXPECT_EQ(r.requests, trace.size());
    EXPECT_GT(r.meanLatency, 0.0);
    EXPECT_GE(r.maxLatency, Cycle{static_cast<std::uint64_t>(r.meanLatency)});
}

TEST(Replay, DeterministicAcrossRuns)
{
    const auto trace = captured("lbm", Cycle{200000});
    ReplayConfig config;
    config.scheme.kind = schemes::SchemeKind::Graphene;
    const ReplayResult a = replayTrace(config, trace);
    const ReplayResult b = replayTrace(config, trace);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
}

TEST(Replay, FrFcfsAtLeastMatchesFcfsOnHitRate)
{
    const auto trace = captured("lbm", Cycle{400000});
    ReplayConfig fcfs;
    fcfs.policy = mem::SchedulerPolicy::Fcfs;
    ReplayConfig frfcfs;
    frfcfs.policy = mem::SchedulerPolicy::FrFcfs;
    const ReplayResult a = replayTrace(fcfs, trace);
    const ReplayResult b = replayTrace(frfcfs, trace);
    EXPECT_GE(b.rowHitRate + 1e-9, a.rowHitRate);
}

TEST(Replay, GrapheneSilentOnReplayedNormalTrace)
{
    const auto trace = captured("MICA", Cycle{400000});
    ReplayConfig config;
    config.scheme.kind = schemes::SchemeKind::Graphene;
    const ReplayResult r = replayTrace(config, trace);
    EXPECT_EQ(r.victimRowsRefreshed, 0u);
    EXPECT_EQ(r.bitFlips, 0u);
}

TEST(Replay, HammerTraceTriggersProtection)
{
    // Hand-build a trace hammering one address from one core.
    dram::Geometry g;
    dram::AddressMapper mapper(g);
    dram::DecodedAddr d{0, 0, 0, Row{30000}, 0};
    const Addr addr = mapper.encode(d);
    std::vector<workloads::TraceRecord> trace;
    for (int i = 0; i < 400000; ++i)
        trace.push_back(
            {Cycle{static_cast<std::uint64_t>(i) * 60}, addr, false,
             0});

    ReplayConfig config;
    config.scheme.kind = schemes::SchemeKind::Graphene;
    config.scheme.rowHammerThreshold = 20000;
    config.physicalThreshold = 20000;
    const ReplayResult r = replayTrace(config, trace);
    EXPECT_GT(r.victimRowsRefreshed, 0u);
    EXPECT_EQ(r.bitFlips, 0u);

    ReplayConfig unprotected = config;
    unprotected.scheme.kind = schemes::SchemeKind::None;
    const ReplayResult u = replayTrace(unprotected, trace);
    EXPECT_GT(u.bitFlips, 0u);
}

} // namespace
} // namespace sim
} // namespace graphene
