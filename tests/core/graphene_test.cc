/**
 * @file
 * Tests for the Graphene scheme itself: the Section III-C theorem as
 * an executable property (no row's actual count advances by T
 * without a victim refresh), reset-window behaviour, worst-case
 * refresh bounds, and the Table IV cost.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "common/random.hh"
#include "core/graphene.hh"

namespace graphene {
namespace core {
namespace {

GrapheneConfig
testConfig(std::uint64_t trh = 2000, unsigned k = 1)
{
    GrapheneConfig c;
    c.rowHammerThreshold = trh;
    c.resetWindowDivisor = k;
    return c;
}

TEST(Graphene, NameAndThreshold)
{
    Graphene g(testConfig(50000, 2));
    EXPECT_EQ(g.name(), "Graphene");
    EXPECT_EQ(g.trackingThreshold().value(), 8333u);
}

TEST(Graphene, CostMatchesTableIV)
{
    // k = 2, T_RH = 50K: 81 entries x (16 addr + 14 count + 1
    // overflow) = 2,511 CAM bits per bank.
    GrapheneConfig c = testConfig(50000, 2);
    const TableCost cost = Graphene::costFor(c, 65536, true);
    EXPECT_EQ(cost.entries, 81u);
    EXPECT_EQ(cost.camBits, 2511u);
    EXPECT_EQ(cost.sramBits, 0u);
}

TEST(Graphene, OverflowBitOptimizationSavesSixBits)
{
    // Section IV-B: 21 -> 15 count bits at the baseline config.
    GrapheneConfig c = testConfig(50000, 1);
    const TableCost raw = Graphene::costFor(c, 65536, false);
    const TableCost opt = Graphene::costFor(c, 65536, true);
    EXPECT_EQ(raw.camBits / raw.entries, 16u + 21u);
    EXPECT_EQ(opt.camBits / opt.entries, 16u + 15u);
}

TEST(Graphene, SingleRowTriggersAtEveryMultipleOfT)
{
    Graphene g(testConfig(2000));
    const std::uint64_t t = g.trackingThreshold().value(); // 500
    RefreshAction action;
    std::uint64_t triggers = 0;
    for (std::uint64_t i = 1; i <= 4 * t; ++i) {
        action.clear();
        g.onActivate(Cycle{i}, Row{1234}, action);
        if (!action.empty()) {
            ++triggers;
            ASSERT_EQ(action.nrrAggressors.size(), 1u);
            EXPECT_EQ(action.nrrAggressors[0], Row{1234});
            EXPECT_EQ(i % t, 0u) << "trigger off-multiple at " << i;
        }
    }
    EXPECT_EQ(triggers, 4u);
}

TEST(Graphene, NoTriggersBelowThreshold)
{
    Graphene g(testConfig(2000));
    RefreshAction action;
    for (std::uint64_t i = 1; i < g.trackingThreshold().value(); ++i) {
        g.onActivate(Cycle{i}, Row{42}, action);
        EXPECT_TRUE(action.empty());
    }
}

TEST(Graphene, TableResetsEveryWindow)
{
    GrapheneConfig c = testConfig(2000, 2);
    Graphene g(c);
    const Cycle window = c.resetWindowCycles();
    RefreshAction action;
    g.onActivate(Cycle{1}, Row{7}, action);
    EXPECT_EQ(g.table().estimatedCount(Row{7}).value(), 1u);
    g.onActivate(window + Cycle{1}, Row{7}, action);
    // First ACT of the new window: the old count is gone.
    EXPECT_EQ(g.table().estimatedCount(Row{7}).value(), 1u);
    EXPECT_EQ(g.resetCount(), 1u);
}

TEST(Graphene, SpreadTrafficNeverTriggers)
{
    // Uniform traffic over many rows cannot reach T on any row.
    Graphene g(testConfig(2000));
    Rng rng(5);
    RefreshAction action;
    for (std::uint64_t i = 0; i < 200000; ++i) {
        g.onActivate(Cycle{i},
                     Row{static_cast<Row::rep>(rng.nextRange(65536))},
                     action);
    }
    EXPECT_TRUE(action.empty());
    EXPECT_EQ(g.victimRefreshEvents(), 0u);
}

std::uint64_t
fnv(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : s)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

/**
 * Theorem property (Section III-C): for any stream, no row's actual
 * per-window count advances by T past the count at its last victim
 * refresh.
 */
class TheoremProperty
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(TheoremProperty, ActualCountNeverAdvancesByT)
{
    const auto [kind, k] = GetParam();
    GrapheneConfig config = testConfig(2000, k);
    Graphene g(config);
    const std::uint64_t t = g.trackingThreshold().value();
    const Cycle window = config.resetWindowCycles();

    Rng rng(fnv(kind));
    std::map<Row, std::uint64_t> actual;
    std::map<Row, std::uint64_t> at_last_refresh;
    std::uint64_t window_idx = 0;
    RefreshAction action;

    // One ACT per tRC-ish step, several windows long.
    const std::uint64_t steps = 300000;
    const std::uint64_t step = 54;
    for (std::uint64_t i = 0; i < steps; ++i) {
        const Cycle cycle{i * step};
        if (cycle / window != window_idx) {
            window_idx = cycle / window;
            actual.clear();
            at_last_refresh.clear();
        }

        Row row;
        if (kind == "single") {
            row = Row{100};
        } else if (kind == "pair") {
            row = i % 2 ? Row{100} : Row{102};
        } else if (kind == "rotate-hot") {
            row = Row{static_cast<Row::rep>(100 + (i / 1000) % 8)};
        } else if (kind == "zipf-ish") {
            row = Row{static_cast<Row::rep>(rng.nextRange(16) == 0
                                       ? 100
                                       : rng.nextRange(4096))};
        } else { // worst-case: exactly W/T rows round-robin
            row = Row{static_cast<Row::rep>(i % (270000 / t))};
        }

        ++actual[row];
        action.clear();
        g.onActivate(cycle, row, action);
        for (Row a : action.nrrAggressors)
            at_last_refresh[a] = actual[a];

        const std::uint64_t base = at_last_refresh.count(row)
                                       ? at_last_refresh[row]
                                       : 0;
        ASSERT_LE(actual[row] - base, t)
            << kind << ": row " << row << " advanced past T at step "
            << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, TheoremProperty,
    ::testing::Combine(::testing::Values("single", "pair",
                                         "rotate-hot", "zipf-ish",
                                         "worst-case"),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_k" + std::to_string(std::get<1>(info.param));
    });

TEST(Graphene, WorstCaseTriggersPerWindowBounded)
{
    // An adversary hammering floor(W/T) rows evenly at full rate can
    // force at most floor(W/T) triggers per reset window.
    GrapheneConfig config = testConfig(50000, 2);
    Graphene g(config);
    const std::uint64_t w = config.maxActsPerWindow().value();
    const std::uint64_t t = g.trackingThreshold().value();
    const unsigned rows = static_cast<unsigned>(w / t);

    RefreshAction action;
    const Cycle window = config.resetWindowCycles();
    // Full-rate ACTs: one per tRC (54 cycles), one window's worth.
    std::uint64_t triggers = 0;
    for (std::uint64_t i = 0; i * 54 < window.value(); ++i) {
        action.clear();
        g.onActivate(Cycle{i * 54},
                     Row{static_cast<Row::rep>(i % rows)}, action);
        triggers += action.nrrAggressors.size();
    }
    EXPECT_LE(triggers, w / t);
    EXPECT_GT(triggers, 0u);
}

} // namespace
} // namespace core
} // namespace graphene
