/**
 * @file
 * Unit tests for the parity-protected counter table: detection of
 * injected single-bit upsets at the next scrub sweep, the
 * conservative repair directions, write-masking semantics, and the
 * SRAM cost accounting on top of Graphene's CAM arrays.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/graphene.hh"
#include "core/hardened_counter_table.hh"
#include "model/area.hh"

namespace graphene {
namespace core {
namespace {

TEST(HardenedCounterTable, CleanTableScrubsClean)
{
    HardenedCounterTable table(4, 16);
    for (std::uint32_t i = 0; i < 64; ++i)
        table.processActivation(Row{i % 6});
    const auto report = table.scrub();
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(report.conservativeNrr.empty());
    EXPECT_EQ(table.parityFailures(), 0u);
    EXPECT_EQ(table.scrubSweeps(), 1u);
}

TEST(HardenedCounterTable, CountFaultDetectedAndRepaired)
{
    HardenedCounterTable table(4, 16);
    const Row hot{9};
    unsigned slot = CounterTable::kNoSlot;
    for (int i = 0; i < 10; ++i) {
        const auto r = table.processActivation(hot);
        if (r.slot != CounterTable::kNoSlot)
            slot = r.slot;
    }
    ASSERT_NE(slot, CounterTable::kNoSlot);

    table.injectEntryCountFault(slot, 20);
    const auto report = table.scrub();
    EXPECT_EQ(report.entriesScrubbed, 1u);
    ASSERT_EQ(report.conservativeNrr.size(), 1u);
    EXPECT_EQ(report.conservativeNrr[0], hot);
    EXPECT_GE(table.parityFailures(), 1u);

    // The slot was invalidated: the row no longer occupies an entry,
    // and a follow-up sweep is clean.
    EXPECT_FALSE(table.table().contains(hot));
    EXPECT_TRUE(table.scrub().clean());
}

TEST(HardenedCounterTable, AddressFaultRefreshesTheClaimedRow)
{
    HardenedCounterTable table(4, 16);
    const Row hot{8};
    unsigned slot = CounterTable::kNoSlot;
    for (int i = 0; i < 10; ++i) {
        const auto r = table.processActivation(hot);
        if (r.slot != CounterTable::kNoSlot)
            slot = r.slot;
    }
    ASSERT_NE(slot, CounterTable::kNoSlot);

    // Flip address bit 2: the entry now claims row 12, not row 8.
    ASSERT_TRUE(table.injectEntryAddressFault(slot, 2));
    const auto report = table.scrub();
    ASSERT_EQ(report.conservativeNrr.size(), 1u);
    // The conservative NRR goes to whatever the entry claims *now*:
    // the flip already lost row 8's identity, and refreshing the
    // claimed row is the only address the hardware still has.
    EXPECT_EQ(report.conservativeNrr[0], Row{12});
}

TEST(HardenedCounterTable, SpilloverFaultRepairedConservatively)
{
    HardenedCounterTable table(2, 16);
    // Fill both entries and push several misses into spillover.
    for (std::uint32_t i = 0; i < 30; ++i)
        table.processActivation(Row{i % 5});
    const ActCount before = table.table().spilloverCount();

    table.injectSpilloverFault(30);
    ASSERT_NE(table.table().spilloverCount(), before);

    const auto report = table.scrub();
    EXPECT_TRUE(report.spilloverScrubbed);
    // Repair = min estimated count over the parity-clean entries,
    // an overestimate of any untracked row's true count.
    EXPECT_EQ(table.table().spilloverCount(),
              table.table().minEstimatedCount());
}

TEST(HardenedCounterTable, WritesMaskFaultsWithFreshParity)
{
    // Parity is recomputed on every write: a corruption of a slot
    // that is touched again before the sweep is absorbed, not
    // detected. This is what bounds the scrub period: it must be
    // shorter than the tracking threshold so an idle corrupted entry
    // is always caught before a hot row can reach T unrefreshed.
    HardenedCounterTable table(4, 16);
    const Row hot{3};
    unsigned slot = CounterTable::kNoSlot;
    for (int i = 0; i < 8; ++i) {
        const auto r = table.processActivation(hot);
        if (r.slot != CounterTable::kNoSlot)
            slot = r.slot;
    }
    table.injectEntryCountFault(slot, 10);
    table.processActivation(hot); // rewrite refreshes stored parity
    EXPECT_TRUE(table.scrub().clean());
}

TEST(HardenedCounterTable, ResetClearsStateAndParity)
{
    HardenedCounterTable table(4, 16);
    for (std::uint32_t i = 0; i < 20; ++i)
        table.processActivation(Row{i % 7});
    table.injectSpilloverFault(3);
    table.reset();
    EXPECT_EQ(table.table().streamLength().value(), 0u);
    EXPECT_TRUE(table.scrub().clean());
}

TEST(HardenedCounterTable, CostAddsOneParityBitPerEntryPlusSpill)
{
    GrapheneConfig config;
    const std::uint64_t rows = 65536;
    const TableCost base = Graphene::costFor(config, rows);
    const TableCost hard =
        HardenedCounterTable::costFor(config, rows);

    EXPECT_EQ(hard.camBits, base.camBits);
    EXPECT_EQ(hard.entries, base.entries);
    EXPECT_EQ(hard.sramBits,
              base.sramBits +
                  HardenedCounterTable::paritySramBits(
                      static_cast<unsigned>(base.entries)));
    EXPECT_EQ(hard.totalBits(), base.totalBits() + base.entries + 1);

    // The extra bits flow through the area model as SRAM, not CAM.
    const unsigned banks = 16;
    EXPECT_GT(model::AreaModel::mm2(hard, banks),
              model::AreaModel::mm2(base, banks));
    EXPECT_EQ(model::AreaModel::bits(hard, banks),
              model::AreaModel::bits(base, banks) +
                  banks * (base.entries + 1));
}

} // namespace
} // namespace core
} // namespace graphene
