/**
 * @file
 * Tests for Graphene's parameter derivation: Table II, the
 * reset-window trade-off of Section IV-C / Figure 6, and the
 * non-adjacent extension of Section III-D.
 */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace graphene {
namespace core {
namespace {

TEST(GrapheneConfig, TableIIBaseline)
{
    GrapheneConfig c; // T_RH = 50K, k = 1, +/-1
    EXPECT_TRUE(c.validate().ok());
    EXPECT_EQ(c.trackingThreshold().value(), 12500u);
    EXPECT_NEAR(static_cast<double>(c.maxActsPerWindow().value()), 1360000.0,
                5000.0);
    EXPECT_EQ(c.numEntries(), 108u);
}

TEST(GrapheneConfig, EvaluatedKEquals2)
{
    GrapheneConfig c;
    c.resetWindowDivisor = 2;
    EXPECT_TRUE(c.validate().ok());
    // Section IV-C: T = 50000 / (2*3) = 8333, Nentry = 81.
    EXPECT_EQ(c.trackingThreshold().value(), 8333u);
    EXPECT_EQ(c.numEntries(), 81u);
}

TEST(GrapheneConfig, InequalityOneHolds)
{
    // Nentry must strictly exceed W/T - 1 for every configuration.
    for (unsigned k = 1; k <= 10; ++k) {
        for (std::uint64_t trh :
             {50000ULL, 25000ULL, 12500ULL, 6250ULL, 3125ULL}) {
            GrapheneConfig c;
            c.rowHammerThreshold = trh;
            c.resetWindowDivisor = k;
            const double w =
                static_cast<double>(c.maxActsPerWindow().value());
            const double t =
                static_cast<double>(c.trackingThreshold().value());
            EXPECT_GT(static_cast<double>(c.numEntries()),
                      w / t - 1.0)
                << "k=" << k << " trh=" << trh;
        }
    }
}

TEST(GrapheneConfig, InequalityThreeHolds)
{
    // (k+1)(T-1) < T_RH / 2 must hold for every k.
    for (unsigned k = 1; k <= 10; ++k) {
        GrapheneConfig c;
        c.resetWindowDivisor = k;
        const double t = static_cast<double>(c.trackingThreshold().value());
        EXPECT_LT((k + 1) * (t - 1.0), 50000.0 / 2.0) << "k=" << k;
    }
}

TEST(GrapheneConfig, Figure6TableSizeShrinksAndSaturates)
{
    // Table entries decrease with k but saturate (k+1)/k -> 1.
    std::vector<unsigned> entries;
    for (unsigned k = 1; k <= 10; ++k) {
        GrapheneConfig c;
        c.resetWindowDivisor = k;
        entries.push_back(c.numEntries());
    }
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_LE(entries[i], entries[i - 1]);
    // Baseline-to-k=2 saving is large...
    EXPECT_LE(entries[1], 81u);
    // ...but the curve flattens: k=9 -> k=10 saves at most 1 entry.
    EXPECT_LE(entries[8] - entries[9], 1u);
}

TEST(GrapheneConfig, Figure6RefreshesGrowWithK)
{
    std::uint64_t prev = 0;
    for (unsigned k = 1; k <= 10; ++k) {
        GrapheneConfig c;
        c.resetWindowDivisor = k;
        const std::uint64_t victims = c.worstCaseVictimRowsPerRefw();
        EXPECT_GE(victims, prev) << "k=" << k;
        prev = victims;
    }
}

TEST(GrapheneConfig, WorstCaseK2MatchesPaper)
{
    // 2 windows x floor(679202/8333)=81 NRRs x 2 rows = 324 rows per
    // tREFW — the basis of the paper's 0.34% refresh-energy bound.
    GrapheneConfig c;
    c.resetWindowDivisor = 2;
    EXPECT_EQ(c.worstCaseVictimRowsPerRefw(), 324u);
}

TEST(GrapheneConfig, InverseSquareMuFactorApproaches164)
{
    // Section III-D: sum(1/i^2) -> pi^2/6 ~ 1.64.
    GrapheneConfig c;
    c.blastRadius = 100;
    c.mu = GrapheneConfig::inverseSquareMu(100);
    EXPECT_NEAR(c.muFactor(), 1.64, 0.01);
    EXPECT_GT(c.muFactor(), 1.0);
    EXPECT_LT(c.muFactor(), 1.6449341); // pi^2/6 upper-bounds it
}

TEST(GrapheneConfig, NonAdjacentShrinksTAndGrowsTable)
{
    GrapheneConfig base;
    GrapheneConfig wide;
    wide.blastRadius = 4;
    wide.mu = GrapheneConfig::inverseSquareMu(4);
    EXPECT_LT(wide.trackingThreshold().value(), base.trackingThreshold().value());
    EXPECT_GT(wide.numEntries(), base.numEntries());
    // Growth factor bounded by the mu sum (Section III-D): 1.64x.
    EXPECT_LT(static_cast<double>(wide.numEntries()),
              static_cast<double>(base.numEntries()) * 1.65);
}

TEST(GrapheneConfig, UniformMuIsMoreConservative)
{
    GrapheneConfig inv, uni;
    inv.blastRadius = uni.blastRadius = 3;
    inv.mu = GrapheneConfig::inverseSquareMu(3);
    uni.mu = GrapheneConfig::uniformMu(3);
    EXPECT_LT(uni.trackingThreshold().value(), inv.trackingThreshold().value());
    EXPECT_GT(uni.numEntries(), inv.numEntries());
}

TEST(GrapheneConfig, ScalesToLowThresholds)
{
    // Section V-C thresholds down to 1.56K must stay derivable.
    for (std::uint64_t trh :
         {50000ULL, 25000ULL, 12500ULL, 6250ULL, 3125ULL, 1560ULL}) {
        GrapheneConfig c;
        c.rowHammerThreshold = trh;
        c.resetWindowDivisor = 2;
        EXPECT_TRUE(c.validate().ok());
        EXPECT_GT(c.trackingThreshold().value(), 0u);
        // Entries scale inversely with the threshold.
        EXPECT_NEAR(static_cast<double>(c.numEntries()),
                    81.0 * 50000.0 / static_cast<double>(trh),
                    81.0 * 50000.0 / static_cast<double>(trh) * 0.05);
    }
}

namespace {

/** True when some note of @p result's error contains @p text. */
bool
hasNote(const Result<void> &result, const std::string &text)
{
    if (result.ok())
        return false;
    for (const auto &note : result.error().notes())
        if (note.find(text) != std::string::npos)
            return true;
    return false;
}

} // namespace

// One test per validation rule: each broken setting must surface as
// a note of a Config error rather than aborting the process.
TEST(GrapheneConfig, ValidateRejectsZeroThreshold)
{
    GrapheneConfig c;
    c.rowHammerThreshold = 0;
    EXPECT_TRUE(hasNote(c.validate(), "Row Hammer threshold"));
}

TEST(GrapheneConfig, ValidateRejectsZeroDivisor)
{
    GrapheneConfig c;
    c.resetWindowDivisor = 0;
    EXPECT_TRUE(hasNote(c.validate(), "divisor"));
}

TEST(GrapheneConfig, ValidateRejectsRadiusMismatch)
{
    GrapheneConfig c;
    c.mu = {1.0, 0.5}; // radius mismatch
    EXPECT_TRUE(hasNote(c.validate(), "blast radius"));
}

TEST(GrapheneConfig, ValidateRejectsBadLeadingMu)
{
    GrapheneConfig c;
    c.mu = {0.5};
    EXPECT_TRUE(hasNote(c.validate(), "mu_1"));
}

TEST(GrapheneConfig, ValidateRejectsOutOfRangeMu)
{
    GrapheneConfig c;
    c.blastRadius = 2;
    c.mu = {1.0, 1.5};
    EXPECT_TRUE(hasNote(c.validate(), "(0, 1]"));
}

TEST(GrapheneConfig, ValidateRejectsDegenerateThreshold)
{
    GrapheneConfig c;
    c.rowHammerThreshold = 1; // floor(1 / 4) = 0
    EXPECT_TRUE(hasNote(c.validate(), "tracking threshold is zero"));
}

TEST(GrapheneConfig, ValidateCollectsEveryViolation)
{
    GrapheneConfig c;
    c.rowHammerThreshold = 0;
    c.resetWindowDivisor = 0;
    c.blastRadius = 2;
    c.mu = {0.5, 2.0, 0.25}; // mismatch + bad mu_1 + out of range
    const Result<void> result = c.validate();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::Config);
    // Every independent rule appears in one report.
    EXPECT_EQ(result.error().notes().size(), 5u);
    EXPECT_TRUE(hasNote(result, "Row Hammer threshold"));
    EXPECT_TRUE(hasNote(result, "divisor"));
    EXPECT_TRUE(hasNote(result, "blast radius"));
    EXPECT_TRUE(hasNote(result, "mu_1"));
    EXPECT_TRUE(hasNote(result, "(0, 1]"));
}

} // namespace
} // namespace core
} // namespace graphene
