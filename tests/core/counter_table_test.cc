/**
 * @file
 * Tests for the Misra-Gries counter table: the exact Figure 2
 * walkthrough, flowchart (Figure 1) semantics, and property-style
 * verification of Lemma 1 (estimated >= actual) and Lemma 2
 * (spillover <= W / (Nentry + 1)) over random, skewed, and
 * adversarial streams.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.hh"
#include "common/zipf.hh"
#include "core/counter_table.hh"

namespace graphene {
namespace core {
namespace {

TEST(CounterTable, Figure2Walkthrough)
{
    // Initial state from the paper: three entries 0x1010:5, 0x2020:7,
    // 0x3030:3; spillover 2. Build it by feeding a stream that
    // produces exactly that state, then replay the figure's steps.
    CounterTable t(3);
    // Fill: 0x1010 x5, 0x2020 x7, 0x3030 x3, two misses on fresh
    // addresses raise spillover to... a miss with min count == spill
    // replaces instead. Construct directly: first occupy all slots.
    for (int i = 0; i < 5; ++i)
        t.processActivation(Row{0x1010});
    for (int i = 0; i < 7; ++i)
        t.processActivation(Row{0x2020});
    for (int i = 0; i < 1; ++i)
        t.processActivation(Row{0x3030});
    // Now counts are {5, 7, 1}, spillover 0. Misses on new addresses
    // replace the count-0... no entry has count 0 (all valid), the
    // min is 1 == ... spillover is 0, no entry equals 0, so a miss
    // bumps spillover to 1. Another miss then replaces 0x3030-like
    // minimum only when count == spillover. Drive spillover to 2 and
    // 0x3030 to 3 explicitly:
    t.processActivation(Row{0xAAAA}); // miss, no count==0 -> spill=1
    t.processActivation(Row{0x3030}); // hit -> 2
    t.processActivation(Row{0xBBBB}); // miss, no count==1 -> spill=2
    t.processActivation(Row{0x3030}); // hit -> 3

    ASSERT_EQ(t.estimatedCount(Row{0x1010}).value(), 5u);
    ASSERT_EQ(t.estimatedCount(Row{0x2020}).value(), 7u);
    ASSERT_EQ(t.estimatedCount(Row{0x3030}).value(), 3u);
    ASSERT_EQ(t.spilloverCount().value(), 2u);

    // Step 1 (Figure 2): ACT 0x1010 hits; count 5 -> 6.
    auto r1 = t.processActivation(Row{0x1010});
    EXPECT_TRUE(r1.hit);
    EXPECT_EQ(r1.estimatedCount.value(), 6u);

    // Step 2: ACT 0x4040 misses; no entry equals spillover 2
    // (counts are 6, 7, 3), so spillover -> 3.
    auto r2 = t.processActivation(Row{0x4040});
    EXPECT_TRUE(r2.spilled);
    EXPECT_EQ(t.spilloverCount().value(), 3u);
    EXPECT_FALSE(t.contains(Row{0x4040}));

    // Step 3: ACT 0x5050 misses; entry 0x3030 has count 3 ==
    // spillover, so it is replaced and the carried-over count
    // becomes 4 (not 1).
    auto r3 = t.processActivation(Row{0x5050});
    EXPECT_TRUE(r3.inserted);
    EXPECT_EQ(r3.estimatedCount.value(), 4u);
    EXPECT_FALSE(t.contains(Row{0x3030}));
    EXPECT_TRUE(t.contains(Row{0x5050}));
    EXPECT_EQ(t.spilloverCount().value(), 3u);
}

TEST(CounterTable, EmptyTableAbsorbsFirstAddresses)
{
    CounterTable t(4);
    for (Row r{100}; r < Row{104}; ++r) {
        auto result = t.processActivation(r);
        EXPECT_TRUE(result.inserted);
        EXPECT_EQ(result.estimatedCount.value(), 1u);
    }
    EXPECT_EQ(t.occupied(), 4u);
    EXPECT_EQ(t.spilloverCount().value(), 0u);
}

TEST(CounterTable, HitIncrementsOnlyThatEntry)
{
    CounterTable t(4);
    t.processActivation(Row{1});
    t.processActivation(Row{2});
    t.processActivation(Row{1});
    EXPECT_EQ(t.estimatedCount(Row{1}).value(), 2u);
    EXPECT_EQ(t.estimatedCount(Row{2}).value(), 1u);
}

TEST(CounterTable, MissWithoutCandidateSpills)
{
    CounterTable t(2);
    t.processActivation(Row{1});
    t.processActivation(Row{1});
    t.processActivation(Row{2});
    t.processActivation(Row{2});
    // counts {2, 2}, spillover 0: a miss cannot replace.
    auto r = t.processActivation(Row{3});
    EXPECT_TRUE(r.spilled);
    EXPECT_EQ(t.spilloverCount().value(), 1u);
}

TEST(CounterTable, ReplacementCarriesCountOver)
{
    CounterTable t(2);
    t.processActivation(Row{1}); // {1:1}
    t.processActivation(Row{2}); // {1:1, 2:1}
    t.processActivation(Row{3}); // spill -> 1
    t.processActivation(Row{4}); // 1 == count(1): replace, count 2
    EXPECT_FALSE(t.contains(Row{1}) && t.contains(Row{2}));
    EXPECT_EQ(t.estimatedCount(Row{4}).value(), 2u);
}

TEST(CounterTable, ResetClearsEverything)
{
    CounterTable t(4);
    for (int i = 0; i < 100; ++i)
        t.processActivation(Row{static_cast<Row::rep>(i % 7)});
    t.reset();
    EXPECT_EQ(t.spilloverCount().value(), 0u);
    EXPECT_EQ(t.streamLength().value(), 0u);
    EXPECT_EQ(t.occupied(), 0u);
    EXPECT_EQ(t.minEstimatedCount().value(), 0u);
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(t.contains(Row{static_cast<Row::rep>(i)}));
    // The table is immediately reusable.
    auto r = t.processActivation(Row{9});
    EXPECT_TRUE(r.inserted);
    EXPECT_EQ(r.estimatedCount.value(), 1u);
}

TEST(CounterTable, ConservationOfStreamLength)
{
    CounterTable t(8);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i)
        t.processActivation(Row{static_cast<Row::rep>(rng.nextRange(64))});
    std::uint64_t sum = t.spilloverCount().value();
    for (const auto &e : t.entries())
        sum += e.count.value();
    EXPECT_EQ(sum, 5000u);
}

/**
 * Property harness: run a stream while shadowing exact per-row
 * counts; check Lemma 1, Lemma 2, and the frequent-element guarantee
 * after every step (invariants) and at the end (guarantees).
 */
class StreamProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, unsigned, std::uint64_t>>
{
  protected:
    Row nextRow(Rng &rng, const std::string &kind, std::uint64_t i,
                ZipfSampler &zipf)
    {
        if (kind == "uniform")
            return Row{static_cast<Row::rep>(rng.nextRange(256))};
        if (kind == "zipf")
            return Row{static_cast<Row::rep>(zipf.sample(rng))};
        if (kind == "single")
            return Row{7};
        if (kind == "round-robin")
            return Row{static_cast<Row::rep>(i % 13)};
        if (kind == "two-phase") // hot rows, then a flood of misses
            return i < 2000 ? Row{static_cast<Row::rep>(i % 3)}
                            : Row{static_cast<Row::rep>(rng.nextRange(4096))};
        return Row{static_cast<Row::rep>(rng.nextRange(64))};
    }
};

TEST_P(StreamProperty, LemmasHoldThroughoutStream)
{
    const auto [kind, entries, seed] = GetParam();
    CounterTable table(entries);
    Rng rng(seed);
    ZipfSampler zipf(512, 0.99);
    std::map<Row, std::uint64_t> actual;

    const std::uint64_t stream_len = 20000;
    for (std::uint64_t i = 0; i < stream_len; ++i) {
        const Row row = nextRow(rng, kind, i, zipf);
        ++actual[row];
        table.processActivation(row);

        // Internal invariants (includes Lemma 2 and conservation).
        table.checkInvariants();

        // Lemma 1: estimated >= actual for every tracked row.
        if (i % 97 == 0) {
            for (const auto &e : table.entries()) {
                if (e.addr == Row::invalid())
                    continue;
                const auto it = actual.find(e.addr);
                const std::uint64_t act =
                    it == actual.end() ? 0 : it->second;
                ASSERT_GE(e.count.value(), act)
                    << kind << " row " << e.addr << " at step " << i;
            }
        }
    }

    // Frequent-elements guarantee: every row with actual count
    // > W / (Nentry + 1) must be present in the table.
    const double bound = static_cast<double>(stream_len) /
                         static_cast<double>(entries + 1);
    for (const auto &kv : actual) {
        if (static_cast<double>(kv.second) > bound) {
            EXPECT_TRUE(table.contains(kv.first))
                << kind << ": hot row " << kv.first << " with "
                << kv.second << " ACTs missing (bound " << bound
                << ")";
        }
    }
}

TEST(CounterTable, ResultReportsTheTouchedSlot)
{
    CounterTable t(2);
    const auto ins = t.processActivation(Row{10});
    EXPECT_TRUE(ins.inserted);
    ASSERT_NE(ins.slot, CounterTable::kNoSlot);
    EXPECT_EQ(t.entries()[ins.slot].addr, Row{10});

    const auto hit = t.processActivation(Row{10});
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.slot, ins.slot);

    // Fill the second slot, then force a pure spill: no slot touched.
    t.processActivation(Row{11});
    const auto spill = t.processActivation(Row{12});
    ASSERT_TRUE(spill.spilled);
    EXPECT_EQ(spill.slot, CounterTable::kNoSlot);
}

TEST(CounterTable, CorruptCountKeepsTableUsable)
{
    // The corruption hooks must keep the bookkeeping structurally
    // consistent: activations after a flip never hard-panic, only the
    // semantic guarantees (Lemma 1) break. Note checkInvariants() is
    // deliberately NOT called here — a faulted table legitimately
    // violates conservation until scrubbed or reset.
    CounterTable t(2);
    for (int i = 0; i < 9; ++i)
        t.processActivation(Row{5});
    const unsigned slot = t.processActivation(Row{5}).slot;
    ASSERT_NE(slot, CounterTable::kNoSlot);

    t.corruptEntryCount(slot, 3); // 10 -> 2
    EXPECT_EQ(t.estimatedCount(Row{5}).value(), 2u);
    for (std::uint32_t i = 0; i < 50; ++i)
        t.processActivation(Row{i % 7});
    t.reset();
    t.checkInvariants(); // reset restores a clean state
}

TEST(CounterTable, CorruptAddressRetargetsTheEntry)
{
    CounterTable t(2);
    for (int i = 0; i < 4; ++i)
        t.processActivation(Row{8});
    const unsigned slot = t.processActivation(Row{8}).slot;
    ASSERT_NE(slot, CounterTable::kNoSlot);

    // Flip bit 1: the entry now answers for row 10 with row 8's count.
    ASSERT_TRUE(t.corruptEntryAddress(slot, 1));
    EXPECT_FALSE(t.contains(Row{8}));
    EXPECT_TRUE(t.contains(Row{10}));
    EXPECT_EQ(t.estimatedCount(Row{10}).value(), 5u);

    // An empty slot holds no address bits to flip.
    CounterTable empty(2);
    EXPECT_FALSE(empty.corruptEntryAddress(0, 0));
}

TEST(CounterTable, CorruptAddressOntoAliasKeepsBothSlots)
{
    // Flipping slot A's address onto slot B's produces a CAM with two
    // matching lines; the earlier-indexed mapping shadows the other,
    // and subsequent activations must not panic.
    CounterTable t(2);
    t.processActivation(Row{4});
    const unsigned slot_a = t.processActivation(Row{4}).slot;
    t.processActivation(Row{6});
    ASSERT_NE(slot_a, CounterTable::kNoSlot);

    t.corruptEntryAddress(slot_a, 1); // 4 -> 6, aliasing the other
    EXPECT_TRUE(t.contains(Row{6}));
    for (int i = 0; i < 20; ++i)
        t.processActivation(Row{6});
    EXPECT_TRUE(t.contains(Row{6}));
}

TEST(CounterTable, ScrubHooksRestoreConservativeState)
{
    CounterTable t(2);
    for (int i = 0; i < 6; ++i)
        t.processActivation(Row{3});
    t.processActivation(Row{9});
    t.processActivation(Row{2}); // miss -> spillover 1
    const unsigned slot = t.processActivation(Row{3}).slot;

    const Row victim = t.scrubResetEntry(slot);
    EXPECT_EQ(victim, Row{3});
    EXPECT_FALSE(t.contains(Row{3}));
    // The slot rejoined the replacement pool at the spillover count.
    EXPECT_EQ(t.entries()[slot].count, t.spilloverCount());

    t.scrubSetSpillover(ActCount{0});
    EXPECT_EQ(t.spilloverCount().value(), 0u);
    EXPECT_EQ(t.scrubResetEntry(slot), Row::invalid());
}

INSTANTIATE_TEST_SUITE_P(
    Streams, StreamProperty,
    ::testing::Combine(
        ::testing::Values("uniform", "zipf", "single", "round-robin",
                          "two-phase"),
        ::testing::Values(2u, 4u, 16u, 64u),
        ::testing::Values(1u, 77u)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_n" +
                           std::to_string(std::get<1>(info.param)) +
                           "_s" +
                           std::to_string(std::get<2>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace core
} // namespace graphene
