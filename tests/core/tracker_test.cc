/**
 * @file
 * Tests for the alternative frequent-elements trackers (paper
 * Section VI): per-tracker semantics, the universal no-underestimate
 * property, the generic TrackerScheme protection theorem, and the
 * cost ordering that justifies Graphene's choice of Misra-Gries.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.hh"
#include "core/graphene.hh"
#include "core/tracker_count_min.hh"
#include "core/tracker_lossy_counting.hh"
#include "core/tracker_misra_gries.hh"
#include "core/tracker_scheme.hh"
#include "core/tracker_space_saving.hh"

namespace graphene {
namespace core {
namespace {

// ---------------------------------------------------------------
// Space Saving semantics
// ---------------------------------------------------------------

TEST(SpaceSaving, FillsBeforeEvicting)
{
    SpaceSavingTracker t(3);
    EXPECT_EQ(t.processActivation(Row{1}).value(), 1u);
    EXPECT_EQ(t.processActivation(Row{2}).value(), 1u);
    EXPECT_EQ(t.processActivation(Row{3}).value(), 1u);
    EXPECT_EQ(t.processActivation(Row{1}).value(), 2u);
    EXPECT_EQ(t.minCount().value(), 1u);
}

TEST(SpaceSaving, MissReplacesMinimumAndInheritsIt)
{
    SpaceSavingTracker t(2);
    t.processActivation(Row{1});
    t.processActivation(Row{1});
    t.processActivation(Row{2}); // counts {1:2, 2:1}
    EXPECT_EQ(t.processActivation(Row{9}).value(),
              2u); // evicts 2, inherits 1+1
    EXPECT_FALSE(t.estimatedCount(Row{2}).value());
    EXPECT_EQ(t.estimatedCount(Row{9}).value(), 2u);
    EXPECT_EQ(t.estimatedCount(Row{1}).value(), 2u);
}

TEST(SpaceSaving, MinBoundedByStreamOverCapacity)
{
    SpaceSavingTracker t(8);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        t.processActivation(Row{static_cast<Row::rep>(rng.nextRange(100))});
        t.checkInvariants();
    }
    EXPECT_LE(t.minCount().value(), 10000u / 8u);
}

TEST(SpaceSaving, ResetClears)
{
    SpaceSavingTracker t(4);
    t.processActivation(Row{1});
    t.reset();
    EXPECT_EQ(t.estimatedCount(Row{1}).value(), 0u);
    EXPECT_EQ(t.streamLength().value(), 0u);
}

// ---------------------------------------------------------------
// Lossy Counting semantics
// ---------------------------------------------------------------

TEST(LossyCounting, ColdRowsPrunedAtBucketBoundary)
{
    LossyCountingTracker t(10); // bucket width 10
    t.processActivation(Row{1});     // f=1, delta=0
    for (int i = 0; i < 9; ++i)
        t.processActivation(Row{static_cast<Row::rep>(100 + i)});
    // Boundary passed: rows with f + delta <= 1 are gone.
    EXPECT_EQ(t.estimatedCount(Row{1}).value(), 0u);
    EXPECT_EQ(t.currentBucket(), 2u);
}

TEST(LossyCounting, HotRowsSurvivePruning)
{
    LossyCountingTracker t(10);
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 5; ++i)
            t.processActivation(Row{7});
        for (int i = 0; i < 5; ++i)
            t.processActivation(Row{static_cast<Row::rep>(1000 + round * 5 +
                                                 i)});
    }
    EXPECT_GE(t.estimatedCount(Row{7}).value(), 100u);
}

TEST(LossyCounting, LateInsertionCarriesDelta)
{
    LossyCountingTracker t(10);
    for (int i = 0; i < 30; ++i)
        t.processActivation(Row{static_cast<Row::rep>(i)}); // 3 buckets pass
    const std::uint64_t est = t.processActivation(Row{999}).value();
    // f = 1, delta = currentBucket - 1 = 3.
    EXPECT_EQ(est, 1u + 3u);
}

TEST(LossyCounting, OccupancyStaysBounded)
{
    LossyCountingTracker t(50);
    Rng rng(5);
    for (int i = 0; i < 200000; ++i)
        t.processActivation(Row{static_cast<Row::rep>(rng.nextRange(65536))});
    // (1/e) log(eN) with 1/e = 50: a few hundred entries.
    EXPECT_LT(t.peakTrackedRows(), 1000u);
}

// ---------------------------------------------------------------
// Count-Min semantics
// ---------------------------------------------------------------

TEST(CountMin, ExactWithoutCollisions)
{
    CountMinConfig config;
    config.width = 4096;
    config.conservativeUpdate = false;
    CountMinTracker t(config);
    for (int i = 0; i < 100; ++i)
        t.processActivation(Row{42});
    EXPECT_GE(t.estimatedCount(Row{42}).value(), 100u);
    EXPECT_LE(t.estimatedCount(Row{42}).value(), 105u); // tiny collision slack
}

TEST(CountMin, CollisionsOnlyInflate)
{
    CountMinConfig config;
    config.width = 4; // force collisions
    config.conservativeUpdate = false;
    CountMinTracker t(config);
    Rng rng(7);
    std::map<Row, std::uint64_t> actual;
    for (int i = 0; i < 5000; ++i) {
        const Row row = Row{static_cast<Row::rep>(rng.nextRange(64))};
        ++actual[row];
        t.processActivation(row);
    }
    for (const auto &kv : actual)
        EXPECT_GE(t.estimatedCount(kv.first).value(), kv.second);
}

TEST(CountMin, ConservativeUpdateIsTighterNeverLower)
{
    CountMinConfig plain_cfg;
    plain_cfg.width = 32;
    plain_cfg.conservativeUpdate = false;
    CountMinConfig cu_cfg = plain_cfg;
    cu_cfg.conservativeUpdate = true;
    CountMinTracker plain(plain_cfg), cu(cu_cfg);

    Rng rng(11);
    std::map<Row, std::uint64_t> actual;
    for (int i = 0; i < 20000; ++i) {
        const Row row = Row{static_cast<Row::rep>(rng.nextRange(256))};
        ++actual[row];
        plain.processActivation(row);
        cu.processActivation(row);
    }
    std::uint64_t plain_total = 0, cu_total = 0;
    for (const auto &kv : actual) {
        EXPECT_GE(cu.estimatedCount(kv.first).value(), kv.second);
        plain_total += plain.estimatedCount(kv.first).value();
        cu_total += cu.estimatedCount(kv.first).value();
    }
    EXPECT_LT(cu_total, plain_total);
}

TEST(CountMin, NoCamBits)
{
    CountMinTracker t(CountMinConfig{});
    EXPECT_EQ(t.cost(65536).camBits, 0u);
    EXPECT_GT(t.cost(65536).sramBits, 0u);
}

// ---------------------------------------------------------------
// Universal properties across all trackers
// ---------------------------------------------------------------

GrapheneConfig
smallGraphene()
{
    GrapheneConfig c;
    c.rowHammerThreshold = 2000;
    c.resetWindowDivisor = 2;
    return c;
}

class TrackerProperty : public ::testing::TestWithParam<TrackerKind>
{
};

TEST_P(TrackerProperty, NeverUnderestimates)
{
    auto tracker = makeTracker(GetParam(), smallGraphene());
    Rng rng(23);
    std::map<Row, std::uint64_t> actual;
    for (int i = 0; i < 60000; ++i) {
        const Row row = rng.bernoulli(0.3)
                            ? Row{50}
                            : Row{static_cast<Row::rep>(
                                  rng.nextRange(2048))};
        ++actual[row];
        tracker->processActivation(row);
        if (i % 211 == 0) {
            for (const auto &kv : actual) {
                const auto est =
                    tracker->estimatedCount(kv.first).value();
                if (est != 0) {
                    ASSERT_GE(est, kv.second)
                        << tracker->name() << " row " << kv.first
                        << " step " << i;
                }
            }
        }
    }
}

TEST_P(TrackerProperty, HotRowAlwaysIndividuallyTracked)
{
    // A row hammered at a rate far above T must stay visible (its
    // estimate must not report 0) once it has accumulated T actual
    // activations — otherwise the scheme could never trigger.
    auto tracker = makeTracker(GetParam(), smallGraphene());
    const std::uint64_t t = smallGraphene().trackingThreshold().value();
    Rng rng(29);
    std::uint64_t hot_actual = 0;
    for (int i = 0; i < 100000; ++i) {
        if (rng.bernoulli(0.5)) {
            ++hot_actual;
            tracker->processActivation(Row{50});
        } else {
            tracker->processActivation(
                Row{static_cast<Row::rep>(rng.nextRange(4096))});
        }
        if (hot_actual >= t) {
            ASSERT_GE(tracker->estimatedCount(Row{50}).value(),
                      hot_actual)
                << tracker->name();
        }
    }
}

TEST_P(TrackerProperty, SchemeTheoremHolds)
{
    // The Graphene theorem generalises: with any no-underestimate
    // tracker, no row's actual count advances by more than T without
    // a victim refresh.
    const GrapheneConfig config = smallGraphene();
    TrackerScheme scheme(makeTracker(GetParam(), config), config);
    const std::uint64_t t = scheme.trackingThreshold().value();
    const Cycle window = config.resetWindowCycles();

    Rng rng(31);
    std::map<Row, std::uint64_t> actual, at_refresh;
    std::uint64_t window_idx = 0;
    RefreshAction action;
    for (std::uint64_t i = 0; i < 250000; ++i) {
        const Cycle cycle{i * 54};
        if (cycle / window != window_idx) {
            window_idx = cycle / window;
            actual.clear();
            at_refresh.clear();
        }
        const Row row = rng.bernoulli(0.4)
                            ? Row{static_cast<Row::rep>(100 + i % 3)}
                            : Row{static_cast<Row::rep>(rng.nextRange(4096))};
        ++actual[row];
        action.clear();
        scheme.onActivate(cycle, row, action);
        for (Row a : action.nrrAggressors)
            at_refresh[a] = actual[a];
        const std::uint64_t base =
            at_refresh.count(row) ? at_refresh[row] : 0;
        ASSERT_LE(actual[row] - base, t)
            << scheme.name() << " row " << row << " step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTrackers, TrackerProperty,
    ::testing::ValuesIn(allTrackerKinds()),
    [](const auto &info) {
        std::string name = trackerKindName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(TrackerCosts, MisraGriesIsTheCheapest)
{
    // The Section VI punchline: at protection parity, Misra-Gries
    // needs the fewest bits.
    const GrapheneConfig config; // T_RH = 50K, k = 1
    const auto mg_bits =
        makeTracker(TrackerKind::MisraGries, config)
            ->cost(65536)
            .totalBits();
    for (const auto kind :
         {TrackerKind::SpaceSaving, TrackerKind::LossyCounting,
          TrackerKind::CountMin}) {
        const auto bits =
            makeTracker(kind, config)->cost(65536).totalBits();
        EXPECT_GE(bits, mg_bits) << trackerKindName(kind);
    }
    // And the sketch / LC structures are several times larger.
    EXPECT_GT(makeTracker(TrackerKind::LossyCounting, config)
                  ->cost(65536)
                  .totalBits(),
              3 * mg_bits);
    EXPECT_GT(makeTracker(TrackerKind::CountMin, config)
                  ->cost(65536)
                  .totalBits(),
              3 * mg_bits);
}

TEST(TrackerScheme, MatchesGrapheneOnMisraGries)
{
    // The generic wrapper over Misra-Gries must behave exactly like
    // the dedicated Graphene implementation.
    const GrapheneConfig config = smallGraphene();
    TrackerScheme generic(
        makeTracker(TrackerKind::MisraGries, config), config);
    Graphene dedicated(config);

    Rng rng(41);
    RefreshAction a1, a2;
    for (std::uint64_t i = 0; i < 100000; ++i) {
        const Row row = rng.bernoulli(0.5)
                            ? Row{7}
                            : Row{static_cast<Row::rep>(
                                  rng.nextRange(512))};
        a1.clear();
        a2.clear();
        generic.onActivate(Cycle{i * 54}, row, a1);
        dedicated.onActivate(Cycle{i * 54}, row, a2);
        ASSERT_EQ(a1.nrrAggressors, a2.nrrAggressors)
            << "step " << i;
    }
}

} // namespace
} // namespace core
} // namespace graphene
