/**
 * @file
 * Differential test: the production CounterTable (bucket-indexed for
 * O(1) updates) against a deliberately naive, obviously-correct
 * Misra-Gries reference that follows the paper's Figure 1 flowchart
 * with linear scans. Any divergence in observable state across long
 * random streams is a bug in one of them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/random.hh"
#include "core/counter_table.hh"

namespace graphene {
namespace core {
namespace {

/** Straight-line transcription of the Figure 1 flowchart. */
class ReferenceMisraGries
{
  public:
    explicit ReferenceMisraGries(unsigned entries)
        : _entries(entries)
    {
    }

    void
    activate(Row addr)
    {
        // Hit?
        for (auto &e : _table) {
            if (e.first == addr) {
                ++e.second;
                return;
            }
        }
        // Free or replaceable slot (count == spillover)?
        if (_table.size() < _entries) {
            // Model the hardware's invalid entries as count 0, which
            // only matches while the spillover count is still 0.
            if (_spillover == 0) {
                _table.emplace_back(addr, 1);
                return;
            }
        }
        for (auto &e : _table) {
            if (e.second == _spillover) {
                e.first = addr;
                ++e.second;
                return;
            }
        }
        ++_spillover;
    }

    std::uint64_t
    count(Row addr) const
    {
        for (const auto &e : _table)
            if (e.first == addr)
                return e.second;
        return 0;
    }

    std::uint64_t spillover() const { return _spillover; }

    /** Multiset of all estimated counts (invalid slots count as 0). */
    std::vector<std::uint64_t>
    countMultiset() const
    {
        std::vector<std::uint64_t> counts;
        for (const auto &e : _table)
            counts.push_back(e.second);
        counts.resize(_entries, 0);
        std::sort(counts.begin(), counts.end());
        return counts;
    }

  private:
    unsigned _entries;
    std::uint64_t _spillover = 0;
    std::vector<std::pair<Row, std::uint64_t>> _table;
};

class DifferentialStream
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(DifferentialStream, ObservableStateAlwaysMatches)
{
    const auto [entries, seed] = GetParam();
    CounterTable table(entries);
    ReferenceMisraGries reference(entries);
    Rng rng(seed);

    for (int i = 0; i < 30000; ++i) {
        // A mix of hot rows and a long uniform tail.
        const Row row = rng.bernoulli(0.4)
                            ? Row{static_cast<Row::rep>(rng.nextRange(3))}
                            : Row{static_cast<Row::rep>(rng.nextRange(500))};
        table.processActivation(row);
        reference.activate(row);

        ASSERT_EQ(table.spilloverCount().value(), reference.spillover())
            << "step " << i;

        if (i % 53 == 0) {
            // The replacement victim among equal-count entries is an
            // implementation choice, so per-address contents may
            // legitimately differ; what must match exactly is the
            // multiset of estimated counts (the algorithm's state up
            // to that choice).
            std::vector<std::uint64_t> counts;
            for (const auto &e : table.entries())
                counts.push_back(e.count.value());
            std::sort(counts.begin(), counts.end());
            ASSERT_EQ(counts, reference.countMultiset())
                << "step " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Tables, DifferentialStream,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 32u),
                       ::testing::Values(11u, 222u, 3333u)),
    [](const auto &info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace core
} // namespace graphene
