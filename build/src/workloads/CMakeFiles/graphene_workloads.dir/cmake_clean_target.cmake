file(REMOVE_RECURSE
  "libgraphene_workloads.a"
)
