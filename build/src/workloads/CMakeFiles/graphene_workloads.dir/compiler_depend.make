# Empty compiler generated dependencies file for graphene_workloads.
# This may be replaced when dependencies are built.
