file(REMOVE_RECURSE
  "CMakeFiles/graphene_workloads.dir/act_patterns.cc.o"
  "CMakeFiles/graphene_workloads.dir/act_patterns.cc.o.d"
  "CMakeFiles/graphene_workloads.dir/profiles.cc.o"
  "CMakeFiles/graphene_workloads.dir/profiles.cc.o.d"
  "CMakeFiles/graphene_workloads.dir/synthetic.cc.o"
  "CMakeFiles/graphene_workloads.dir/synthetic.cc.o.d"
  "CMakeFiles/graphene_workloads.dir/trace_io.cc.o"
  "CMakeFiles/graphene_workloads.dir/trace_io.cc.o.d"
  "libgraphene_workloads.a"
  "libgraphene_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
