
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/act_patterns.cc" "src/workloads/CMakeFiles/graphene_workloads.dir/act_patterns.cc.o" "gcc" "src/workloads/CMakeFiles/graphene_workloads.dir/act_patterns.cc.o.d"
  "/root/repo/src/workloads/profiles.cc" "src/workloads/CMakeFiles/graphene_workloads.dir/profiles.cc.o" "gcc" "src/workloads/CMakeFiles/graphene_workloads.dir/profiles.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/graphene_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/graphene_workloads.dir/synthetic.cc.o.d"
  "/root/repo/src/workloads/trace_io.cc" "src/workloads/CMakeFiles/graphene_workloads.dir/trace_io.cc.o" "gcc" "src/workloads/CMakeFiles/graphene_workloads.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphene_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/graphene_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/graphene_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/graphene_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
