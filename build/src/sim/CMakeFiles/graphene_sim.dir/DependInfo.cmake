
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/act_engine.cc" "src/sim/CMakeFiles/graphene_sim.dir/act_engine.cc.o" "gcc" "src/sim/CMakeFiles/graphene_sim.dir/act_engine.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/graphene_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/graphene_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/replay.cc" "src/sim/CMakeFiles/graphene_sim.dir/replay.cc.o" "gcc" "src/sim/CMakeFiles/graphene_sim.dir/replay.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/graphene_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/graphene_sim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphene_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/graphene_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/graphene_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/graphene_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/graphene_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/graphene_model.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/graphene_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
