file(REMOVE_RECURSE
  "CMakeFiles/graphene_sim.dir/act_engine.cc.o"
  "CMakeFiles/graphene_sim.dir/act_engine.cc.o.d"
  "CMakeFiles/graphene_sim.dir/experiment.cc.o"
  "CMakeFiles/graphene_sim.dir/experiment.cc.o.d"
  "CMakeFiles/graphene_sim.dir/replay.cc.o"
  "CMakeFiles/graphene_sim.dir/replay.cc.o.d"
  "CMakeFiles/graphene_sim.dir/system.cc.o"
  "CMakeFiles/graphene_sim.dir/system.cc.o.d"
  "libgraphene_sim.a"
  "libgraphene_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
