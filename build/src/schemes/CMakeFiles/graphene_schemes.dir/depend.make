# Empty dependencies file for graphene_schemes.
# This may be replaced when dependencies are built.
