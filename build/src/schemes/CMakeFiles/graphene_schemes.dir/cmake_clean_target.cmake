file(REMOVE_RECURSE
  "libgraphene_schemes.a"
)
