file(REMOVE_RECURSE
  "CMakeFiles/graphene_schemes.dir/cbt.cc.o"
  "CMakeFiles/graphene_schemes.dir/cbt.cc.o.d"
  "CMakeFiles/graphene_schemes.dir/factory.cc.o"
  "CMakeFiles/graphene_schemes.dir/factory.cc.o.d"
  "CMakeFiles/graphene_schemes.dir/mrloc.cc.o"
  "CMakeFiles/graphene_schemes.dir/mrloc.cc.o.d"
  "CMakeFiles/graphene_schemes.dir/para.cc.o"
  "CMakeFiles/graphene_schemes.dir/para.cc.o.d"
  "CMakeFiles/graphene_schemes.dir/prohit.cc.o"
  "CMakeFiles/graphene_schemes.dir/prohit.cc.o.d"
  "CMakeFiles/graphene_schemes.dir/twice.cc.o"
  "CMakeFiles/graphene_schemes.dir/twice.cc.o.d"
  "libgraphene_schemes.a"
  "libgraphene_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
