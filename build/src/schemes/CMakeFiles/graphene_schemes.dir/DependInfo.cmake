
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/cbt.cc" "src/schemes/CMakeFiles/graphene_schemes.dir/cbt.cc.o" "gcc" "src/schemes/CMakeFiles/graphene_schemes.dir/cbt.cc.o.d"
  "/root/repo/src/schemes/factory.cc" "src/schemes/CMakeFiles/graphene_schemes.dir/factory.cc.o" "gcc" "src/schemes/CMakeFiles/graphene_schemes.dir/factory.cc.o.d"
  "/root/repo/src/schemes/mrloc.cc" "src/schemes/CMakeFiles/graphene_schemes.dir/mrloc.cc.o" "gcc" "src/schemes/CMakeFiles/graphene_schemes.dir/mrloc.cc.o.d"
  "/root/repo/src/schemes/para.cc" "src/schemes/CMakeFiles/graphene_schemes.dir/para.cc.o" "gcc" "src/schemes/CMakeFiles/graphene_schemes.dir/para.cc.o.d"
  "/root/repo/src/schemes/prohit.cc" "src/schemes/CMakeFiles/graphene_schemes.dir/prohit.cc.o" "gcc" "src/schemes/CMakeFiles/graphene_schemes.dir/prohit.cc.o.d"
  "/root/repo/src/schemes/twice.cc" "src/schemes/CMakeFiles/graphene_schemes.dir/twice.cc.o" "gcc" "src/schemes/CMakeFiles/graphene_schemes.dir/twice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/graphene_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
