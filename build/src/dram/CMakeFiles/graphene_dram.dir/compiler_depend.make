# Empty compiler generated dependencies file for graphene_dram.
# This may be replaced when dependencies are built.
