file(REMOVE_RECURSE
  "CMakeFiles/graphene_dram.dir/address.cc.o"
  "CMakeFiles/graphene_dram.dir/address.cc.o.d"
  "CMakeFiles/graphene_dram.dir/bank.cc.o"
  "CMakeFiles/graphene_dram.dir/bank.cc.o.d"
  "CMakeFiles/graphene_dram.dir/fault_model.cc.o"
  "CMakeFiles/graphene_dram.dir/fault_model.cc.o.d"
  "CMakeFiles/graphene_dram.dir/rank.cc.o"
  "CMakeFiles/graphene_dram.dir/rank.cc.o.d"
  "CMakeFiles/graphene_dram.dir/timing.cc.o"
  "CMakeFiles/graphene_dram.dir/timing.cc.o.d"
  "libgraphene_dram.a"
  "libgraphene_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
