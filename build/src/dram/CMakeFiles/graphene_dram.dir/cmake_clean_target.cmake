file(REMOVE_RECURSE
  "libgraphene_dram.a"
)
