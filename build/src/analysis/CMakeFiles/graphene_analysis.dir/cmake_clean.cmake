file(REMOVE_RECURSE
  "CMakeFiles/graphene_analysis.dir/para_model.cc.o"
  "CMakeFiles/graphene_analysis.dir/para_model.cc.o.d"
  "CMakeFiles/graphene_analysis.dir/refresh_rate.cc.o"
  "CMakeFiles/graphene_analysis.dir/refresh_rate.cc.o.d"
  "libgraphene_analysis.a"
  "libgraphene_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
