file(REMOVE_RECURSE
  "libgraphene_analysis.a"
)
