# Empty compiler generated dependencies file for graphene_analysis.
# This may be replaced when dependencies are built.
