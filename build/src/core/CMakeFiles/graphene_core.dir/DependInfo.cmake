
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/graphene_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/config.cc.o.d"
  "/root/repo/src/core/counter_table.cc" "src/core/CMakeFiles/graphene_core.dir/counter_table.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/counter_table.cc.o.d"
  "/root/repo/src/core/graphene.cc" "src/core/CMakeFiles/graphene_core.dir/graphene.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/graphene.cc.o.d"
  "/root/repo/src/core/protection_scheme.cc" "src/core/CMakeFiles/graphene_core.dir/protection_scheme.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/protection_scheme.cc.o.d"
  "/root/repo/src/core/tracker_count_min.cc" "src/core/CMakeFiles/graphene_core.dir/tracker_count_min.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/tracker_count_min.cc.o.d"
  "/root/repo/src/core/tracker_lossy_counting.cc" "src/core/CMakeFiles/graphene_core.dir/tracker_lossy_counting.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/tracker_lossy_counting.cc.o.d"
  "/root/repo/src/core/tracker_misra_gries.cc" "src/core/CMakeFiles/graphene_core.dir/tracker_misra_gries.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/tracker_misra_gries.cc.o.d"
  "/root/repo/src/core/tracker_scheme.cc" "src/core/CMakeFiles/graphene_core.dir/tracker_scheme.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/tracker_scheme.cc.o.d"
  "/root/repo/src/core/tracker_space_saving.cc" "src/core/CMakeFiles/graphene_core.dir/tracker_space_saving.cc.o" "gcc" "src/core/CMakeFiles/graphene_core.dir/tracker_space_saving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphene_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/graphene_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
