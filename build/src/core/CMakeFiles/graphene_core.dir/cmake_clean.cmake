file(REMOVE_RECURSE
  "CMakeFiles/graphene_core.dir/config.cc.o"
  "CMakeFiles/graphene_core.dir/config.cc.o.d"
  "CMakeFiles/graphene_core.dir/counter_table.cc.o"
  "CMakeFiles/graphene_core.dir/counter_table.cc.o.d"
  "CMakeFiles/graphene_core.dir/graphene.cc.o"
  "CMakeFiles/graphene_core.dir/graphene.cc.o.d"
  "CMakeFiles/graphene_core.dir/protection_scheme.cc.o"
  "CMakeFiles/graphene_core.dir/protection_scheme.cc.o.d"
  "CMakeFiles/graphene_core.dir/tracker_count_min.cc.o"
  "CMakeFiles/graphene_core.dir/tracker_count_min.cc.o.d"
  "CMakeFiles/graphene_core.dir/tracker_lossy_counting.cc.o"
  "CMakeFiles/graphene_core.dir/tracker_lossy_counting.cc.o.d"
  "CMakeFiles/graphene_core.dir/tracker_misra_gries.cc.o"
  "CMakeFiles/graphene_core.dir/tracker_misra_gries.cc.o.d"
  "CMakeFiles/graphene_core.dir/tracker_scheme.cc.o"
  "CMakeFiles/graphene_core.dir/tracker_scheme.cc.o.d"
  "CMakeFiles/graphene_core.dir/tracker_space_saving.cc.o"
  "CMakeFiles/graphene_core.dir/tracker_space_saving.cc.o.d"
  "libgraphene_core.a"
  "libgraphene_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
