# Empty compiler generated dependencies file for graphene_common.
# This may be replaced when dependencies are built.
