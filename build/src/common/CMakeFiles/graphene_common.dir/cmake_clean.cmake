file(REMOVE_RECURSE
  "CMakeFiles/graphene_common.dir/logging.cc.o"
  "CMakeFiles/graphene_common.dir/logging.cc.o.d"
  "CMakeFiles/graphene_common.dir/random.cc.o"
  "CMakeFiles/graphene_common.dir/random.cc.o.d"
  "CMakeFiles/graphene_common.dir/stats.cc.o"
  "CMakeFiles/graphene_common.dir/stats.cc.o.d"
  "CMakeFiles/graphene_common.dir/table_printer.cc.o"
  "CMakeFiles/graphene_common.dir/table_printer.cc.o.d"
  "CMakeFiles/graphene_common.dir/zipf.cc.o"
  "CMakeFiles/graphene_common.dir/zipf.cc.o.d"
  "libgraphene_common.a"
  "libgraphene_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
