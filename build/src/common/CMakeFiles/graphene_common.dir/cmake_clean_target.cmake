file(REMOVE_RECURSE
  "libgraphene_common.a"
)
