# Empty dependencies file for graphene_mem.
# This may be replaced when dependencies are built.
