file(REMOVE_RECURSE
  "libgraphene_mem.a"
)
