file(REMOVE_RECURSE
  "CMakeFiles/graphene_mem.dir/controller.cc.o"
  "CMakeFiles/graphene_mem.dir/controller.cc.o.d"
  "CMakeFiles/graphene_mem.dir/queued_controller.cc.o"
  "CMakeFiles/graphene_mem.dir/queued_controller.cc.o.d"
  "libgraphene_mem.a"
  "libgraphene_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
