# Empty compiler generated dependencies file for graphene_model.
# This may be replaced when dependencies are built.
