file(REMOVE_RECURSE
  "CMakeFiles/graphene_model.dir/area.cc.o"
  "CMakeFiles/graphene_model.dir/area.cc.o.d"
  "CMakeFiles/graphene_model.dir/cam_timing.cc.o"
  "CMakeFiles/graphene_model.dir/cam_timing.cc.o.d"
  "CMakeFiles/graphene_model.dir/energy.cc.o"
  "CMakeFiles/graphene_model.dir/energy.cc.o.d"
  "libgraphene_model.a"
  "libgraphene_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
