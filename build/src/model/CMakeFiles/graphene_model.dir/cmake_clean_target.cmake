file(REMOVE_RECURSE
  "libgraphene_model.a"
)
