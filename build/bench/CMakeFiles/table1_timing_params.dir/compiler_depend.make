# Empty compiler generated dependencies file for table1_timing_params.
# This may be replaced when dependencies are built.
