file(REMOVE_RECURSE
  "CMakeFiles/table1_timing_params.dir/table1_timing_params.cc.o"
  "CMakeFiles/table1_timing_params.dir/table1_timing_params.cc.o.d"
  "table1_timing_params"
  "table1_timing_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_timing_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
