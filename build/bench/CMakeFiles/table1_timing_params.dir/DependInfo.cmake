
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_timing_params.cc" "bench/CMakeFiles/table1_timing_params.dir/table1_timing_params.cc.o" "gcc" "bench/CMakeFiles/table1_timing_params.dir/table1_timing_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/graphene_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/graphene_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/graphene_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/graphene_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/graphene_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/graphene_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/graphene_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
