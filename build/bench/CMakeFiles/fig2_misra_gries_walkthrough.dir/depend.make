# Empty dependencies file for fig2_misra_gries_walkthrough.
# This may be replaced when dependencies are built.
