file(REMOVE_RECURSE
  "CMakeFiles/fig2_misra_gries_walkthrough.dir/fig2_misra_gries_walkthrough.cc.o"
  "CMakeFiles/fig2_misra_gries_walkthrough.dir/fig2_misra_gries_walkthrough.cc.o.d"
  "fig2_misra_gries_walkthrough"
  "fig2_misra_gries_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_misra_gries_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
