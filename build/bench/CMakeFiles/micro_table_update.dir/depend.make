# Empty dependencies file for micro_table_update.
# This may be replaced when dependencies are built.
