file(REMOVE_RECURSE
  "CMakeFiles/micro_table_update.dir/micro_table_update.cc.o"
  "CMakeFiles/micro_table_update.dir/micro_table_update.cc.o.d"
  "micro_table_update"
  "micro_table_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_table_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
