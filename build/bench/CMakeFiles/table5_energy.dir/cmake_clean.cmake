file(REMOVE_RECURSE
  "CMakeFiles/table5_energy.dir/table5_energy.cc.o"
  "CMakeFiles/table5_energy.dir/table5_energy.cc.o.d"
  "table5_energy"
  "table5_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
