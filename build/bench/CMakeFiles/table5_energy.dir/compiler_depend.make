# Empty compiler generated dependencies file for table5_energy.
# This may be replaced when dependencies are built.
