file(REMOVE_RECURSE
  "CMakeFiles/secVD_nonadjacent.dir/secVD_nonadjacent.cc.o"
  "CMakeFiles/secVD_nonadjacent.dir/secVD_nonadjacent.cc.o.d"
  "secVD_nonadjacent"
  "secVD_nonadjacent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secVD_nonadjacent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
