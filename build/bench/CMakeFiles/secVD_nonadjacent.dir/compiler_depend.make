# Empty compiler generated dependencies file for secVD_nonadjacent.
# This may be replaced when dependencies are built.
