file(REMOVE_RECURSE
  "CMakeFiles/secVI_trackers.dir/secVI_trackers.cc.o"
  "CMakeFiles/secVI_trackers.dir/secVI_trackers.cc.o.d"
  "secVI_trackers"
  "secVI_trackers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secVI_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
