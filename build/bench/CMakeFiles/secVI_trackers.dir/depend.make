# Empty dependencies file for secVI_trackers.
# This may be replaced when dependencies are built.
