# Empty compiler generated dependencies file for secIIC_remap.
# This may be replaced when dependencies are built.
