file(REMOVE_RECURSE
  "CMakeFiles/secIIC_remap.dir/secIIC_remap.cc.o"
  "CMakeFiles/secIIC_remap.dir/secIIC_remap.cc.o.d"
  "secIIC_remap"
  "secIIC_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIIC_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
