file(REMOVE_RECURSE
  "CMakeFiles/table2_graphene_params.dir/table2_graphene_params.cc.o"
  "CMakeFiles/table2_graphene_params.dir/table2_graphene_params.cc.o.d"
  "table2_graphene_params"
  "table2_graphene_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_graphene_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
