file(REMOVE_RECURSE
  "CMakeFiles/fig3_worst_case_bound.dir/fig3_worst_case_bound.cc.o"
  "CMakeFiles/fig3_worst_case_bound.dir/fig3_worst_case_bound.cc.o.d"
  "fig3_worst_case_bound"
  "fig3_worst_case_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_worst_case_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
