# Empty dependencies file for fig3_worst_case_bound.
# This may be replaced when dependencies are built.
