# Empty dependencies file for fig7_security_analysis.
# This may be replaced when dependencies are built.
