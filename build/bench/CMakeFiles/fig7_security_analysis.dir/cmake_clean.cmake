file(REMOVE_RECURSE
  "CMakeFiles/fig7_security_analysis.dir/fig7_security_analysis.cc.o"
  "CMakeFiles/fig7_security_analysis.dir/fig7_security_analysis.cc.o.d"
  "fig7_security_analysis"
  "fig7_security_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_security_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
