file(REMOVE_RECURSE
  "CMakeFiles/table4_table_sizes.dir/table4_table_sizes.cc.o"
  "CMakeFiles/table4_table_sizes.dir/table4_table_sizes.cc.o.d"
  "table4_table_sizes"
  "table4_table_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_table_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
