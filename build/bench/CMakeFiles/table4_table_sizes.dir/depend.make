# Empty dependencies file for table4_table_sizes.
# This may be replaced when dependencies are built.
