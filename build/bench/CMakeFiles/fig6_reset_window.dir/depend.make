# Empty dependencies file for fig6_reset_window.
# This may be replaced when dependencies are built.
