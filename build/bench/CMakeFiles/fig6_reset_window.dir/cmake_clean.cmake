file(REMOVE_RECURSE
  "CMakeFiles/fig6_reset_window.dir/fig6_reset_window.cc.o"
  "CMakeFiles/fig6_reset_window.dir/fig6_reset_window.cc.o.d"
  "fig6_reset_window"
  "fig6_reset_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reset_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
