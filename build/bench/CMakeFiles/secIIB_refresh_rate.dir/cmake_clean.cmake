file(REMOVE_RECURSE
  "CMakeFiles/secIIB_refresh_rate.dir/secIIB_refresh_rate.cc.o"
  "CMakeFiles/secIIB_refresh_rate.dir/secIIB_refresh_rate.cc.o.d"
  "secIIB_refresh_rate"
  "secIIB_refresh_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIIB_refresh_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
