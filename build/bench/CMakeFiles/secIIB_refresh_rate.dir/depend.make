# Empty dependencies file for secIIB_refresh_rate.
# This may be replaced when dependencies are built.
