file(REMOVE_RECURSE
  "CMakeFiles/schemes_test.dir/schemes/cbt_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes/cbt_test.cc.o.d"
  "CMakeFiles/schemes_test.dir/schemes/mrloc_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes/mrloc_test.cc.o.d"
  "CMakeFiles/schemes_test.dir/schemes/para_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes/para_test.cc.o.d"
  "CMakeFiles/schemes_test.dir/schemes/prohit_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes/prohit_test.cc.o.d"
  "CMakeFiles/schemes_test.dir/schemes/protection_property_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes/protection_property_test.cc.o.d"
  "CMakeFiles/schemes_test.dir/schemes/twice_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes/twice_test.cc.o.d"
  "schemes_test"
  "schemes_test.pdb"
  "schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
